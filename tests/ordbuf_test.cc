// Tests for the ordered-buffer policy layer (src/ordbuf/): the tournament
// structures, and a shared parameterized suite run against all three
// OrderedBuffer implementations — the run-queue fast path must be
// observationally identical to the tree-backed buffers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common/random.h"
#include "src/eunomia/op.h"
#include "src/ordbuf/avl_buffer.h"
#include "src/ordbuf/min_tournament.h"
#include "src/ordbuf/ordered_buffer.h"
#include "src/ordbuf/partition_run_buffer.h"
#include "src/ordbuf/rbtree_buffer.h"
#include "src/ordbuf/tournament_tree.h"

namespace eunomia::ordbuf {
namespace {

// --- MinTournament -----------------------------------------------------------

TEST(MinTournamentTest, InitializesEveryEntryAndTheMin) {
  MinTournament mt(5, 7);
  EXPECT_EQ(mt.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(mt.Get(i), 7u);
  }
  EXPECT_EQ(mt.Min(), 7u);
}

TEST(MinTournamentTest, PaddingBeyondSizeNeverWins) {
  // n = 5 pads to capacity 8; the three phantom leaves hold kTimestampMax.
  MinTournament mt(5, 0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    mt.Set(i, 1000 + i);
  }
  EXPECT_EQ(mt.Min(), 1000u);
}

TEST(MinTournamentTest, SingleEntry) {
  MinTournament mt(1);
  EXPECT_EQ(mt.Min(), kTimestampZero);
  mt.Set(0, 42);
  EXPECT_EQ(mt.Min(), 42u);
  EXPECT_EQ(mt.Get(0), 42u);
}

TEST(MinTournamentTest, TracksTheMovingMinimum) {
  MinTournament mt(4);
  mt.Set(0, 10);
  mt.Set(1, 20);
  mt.Set(2, 30);
  EXPECT_EQ(mt.Min(), kTimestampZero);  // partition 3 not heard from
  mt.Set(3, 5);
  EXPECT_EQ(mt.Min(), 5u);
  mt.Set(3, 40);  // the old min advances past everyone
  EXPECT_EQ(mt.Min(), 10u);
  mt.Set(0, 50);
  EXPECT_EQ(mt.Min(), 20u);
}

TEST(MinTournamentTest, RandomizedMatchesLinearScan) {
  Rng rng(11);
  for (const std::uint32_t n : {1u, 2u, 3u, 7u, 16u, 33u}) {
    MinTournament mt(n);
    std::vector<Timestamp> reference(n, kTimestampZero);
    for (int step = 0; step < 2000; ++step) {
      const auto i = static_cast<std::uint32_t>(rng.NextBounded(n));
      const Timestamp v = rng.NextBounded(1000);
      mt.Set(i, v);
      reference[i] = v;
      ASSERT_EQ(mt.Min(), *std::min_element(reference.begin(), reference.end()));
      ASSERT_EQ(mt.Get(i), reference[i]);
    }
  }
}

// --- MergeTournament ---------------------------------------------------------

// Reference oracle: linear scan for the smallest non-empty head.
std::optional<std::uint32_t> ScanWinner(
    const std::vector<std::optional<OpOrderKey>>& heads) {
  std::optional<std::uint32_t> best;
  for (std::uint32_t i = 0; i < heads.size(); ++i) {
    if (!heads[i].has_value()) {
      continue;
    }
    if (!best.has_value() || *heads[i] < *heads[*best]) {
      best = i;
    }
  }
  return best;
}

TEST(MergeTournamentTest, ArbitraryLeafUpdatesKeepTheWinnerCorrect) {
  Rng rng(23);
  for (const std::uint32_t runs : {1u, 2u, 3u, 5u, 8u, 13u}) {
    std::vector<std::optional<OpOrderKey>> heads(runs);
    const auto key_of = [&heads](std::uint32_t r) -> const OpOrderKey* {
      return r < heads.size() && heads[r].has_value() ? &*heads[r] : nullptr;
    };
    MergeTournament mt(runs);
    mt.Rebuild(key_of);
    for (int step = 0; step < 3000; ++step) {
      const auto r = static_cast<std::uint32_t>(rng.NextBounded(runs));
      // Mix revivals (empty -> key), head advances (key -> larger key), and
      // exhaustions (key -> empty): exactly the three transitions the run
      // buffer drives. Revival of an arbitrary leaf is the case the classic
      // loser-tree replay gets wrong.
      const int action = static_cast<int>(rng.NextBounded(3));
      if (action == 0) {
        heads[r] = std::nullopt;
      } else {
        const Timestamp base = heads[r].has_value() ? heads[r]->ts : 0;
        heads[r] = OpOrderKey{base + 1 + rng.NextBounded(100), r};
      }
      mt.Update(r, key_of);
      const auto expect = ScanWinner(heads);
      if (expect.has_value()) {
        ASSERT_EQ(mt.Winner(), *expect) << "runs=" << runs << " step=" << step;
      } else {
        // All empty: any winner is acceptable; the buffer checks the head.
        ASSERT_LT(mt.Winner(), std::max(runs, 1u));
      }
    }
  }
}

// --- shared OrderedBuffer suite ----------------------------------------------

template <typename Buffer>
class OrderedBufferPolicyTest : public ::testing::Test {};

using BufferTypes = ::testing::Types<PartitionRunBuffer<std::uint64_t>,
                                     RbTreeBuffer<std::uint64_t>,
                                     AvlBuffer<std::uint64_t>>;
TYPED_TEST_SUITE(OrderedBufferPolicyTest, BufferTypes);

using Extracted = std::vector<std::pair<OpOrderKey, std::uint64_t>>;

template <typename Buffer>
Extracted Drain(Buffer& buf, const OpOrderKey& bound) {
  Extracted out;
  buf.ExtractUpTo(bound, [&out](const OpOrderKey& key, std::uint64_t&& value) {
    out.emplace_back(key, value);
  });
  return out;
}

constexpr OpOrderKey kAll{kTimestampMax, ~PartitionId{0}};

TYPED_TEST(OrderedBufferPolicyTest, ExtractsInterleavedStreamsInGlobalOrder) {
  TypeParam buf(4);
  // Four interleaved ascending streams; global arrival order is scrambled.
  buf.Append({100, 2}, 1);
  buf.Append({50, 0}, 2);
  buf.Append({75, 3}, 3);
  buf.Append({60, 0}, 4);
  buf.Append({55, 1}, 5);
  buf.Append({120, 2}, 6);
  EXPECT_EQ(buf.size(), 6u);
  EXPECT_FALSE(buf.empty());
  const Extracted out = Drain(buf, kAll);
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
  EXPECT_EQ(out.front().first, (OpOrderKey{50, 0}));
  EXPECT_EQ(out.back().first, (OpOrderKey{120, 2}));
  EXPECT_TRUE(buf.empty());
}

TYPED_TEST(OrderedBufferPolicyTest, BoundaryAtEqualTimestampAcrossPartitions) {
  // Concurrent updates on different partitions may share ts == bound; every
  // one of them is below (bound, max-partition) and must come out, ordered
  // by partition id, while ts == bound + 1 stays.
  TypeParam buf(3);
  buf.Append({100, 1}, 11);
  buf.Append({100, 0}, 22);
  buf.Append({100, 2}, 33);
  buf.Append({101, 0}, 44);
  buf.Append({101, 1}, 55);
  const Extracted out = Drain(buf, OpOrderKey{100, ~PartitionId{0}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, (OpOrderKey{100, 0}));
  EXPECT_EQ(out[1].first, (OpOrderKey{100, 1}));
  EXPECT_EQ(out[2].first, (OpOrderKey{100, 2}));
  EXPECT_EQ(out[0].second, 22u);
  EXPECT_EQ(buf.size(), 2u);
}

TYPED_TEST(OrderedBufferPolicyTest, ExactPartitionBoundIsInclusiveBelow) {
  // A bound of (100, 1) takes (100, 0) and (100, 1) but not (100, 2).
  TypeParam buf(3);
  buf.Append({100, 0}, 1);
  buf.Append({100, 1}, 2);
  buf.Append({100, 2}, 3);
  const Extracted out = Drain(buf, OpOrderKey{100, 1});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].first, (OpOrderKey{100, 1}));
  EXPECT_EQ(buf.size(), 1u);
}

TYPED_TEST(OrderedBufferPolicyTest, ReuseAfterExtractIncludingDrainedRunRevival) {
  TypeParam buf(2);
  buf.Append({10, 0}, 1);
  buf.Append({20, 1}, 2);
  EXPECT_EQ(Drain(buf, kAll).size(), 2u);
  EXPECT_TRUE(buf.empty());
  // Revive both fully drained runs — on the run-queue backend this replays
  // arbitrary tournament leaves, the case a naive merge structure corrupts.
  buf.Append({30, 1}, 3);
  buf.Append({25, 0}, 4);
  const Extracted out = Drain(buf, kAll);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, (OpOrderKey{25, 0}));
  EXPECT_EQ(out[1].first, (OpOrderKey{30, 1}));
}

TYPED_TEST(OrderedBufferPolicyTest, PartialExtractKeepsTheSuffixOrdered) {
  TypeParam buf(2);
  for (Timestamp ts = 1; ts <= 100; ++ts) {
    buf.Append({ts * 2, 0}, ts);
    buf.Append({ts * 2 + 1, 1}, ts);
  }
  const Extracted first = Drain(buf, OpOrderKey{99, ~PartitionId{0}});
  ASSERT_EQ(first.size(), 98u);  // ts 2..99
  EXPECT_EQ(buf.size(), 102u);
  const Extracted rest = Drain(buf, kAll);
  ASSERT_EQ(rest.size(), 102u);
  EXPECT_EQ(rest.front().first, (OpOrderKey{100, 0}));
  for (std::size_t i = 1; i < rest.size(); ++i) {
    EXPECT_LT(rest[i - 1].first, rest[i].first);
  }
}

TYPED_TEST(OrderedBufferPolicyTest, FirstPartitionBaseMapsGlobalIds) {
  // A shard buffer owning global partitions [8, 11).
  TypeParam buf(3, /*first_partition=*/8);
  buf.Append({10, 9}, 1);
  buf.Append({5, 8}, 2);
  buf.Append({7, 10}, 3);
  const Extracted out = Drain(buf, kAll);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, (OpOrderKey{5, 8}));
  EXPECT_EQ(out[1].first, (OpOrderKey{7, 10}));
  EXPECT_EQ(out[2].first, (OpOrderKey{10, 9}));
}

TYPED_TEST(OrderedBufferPolicyTest, RandomizedMatchesReferenceModel) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint32_t partitions = 1 + static_cast<std::uint32_t>(rng.NextBounded(9));
    TypeParam buf(partitions);
    std::map<OpOrderKey, std::uint64_t> model;
    std::vector<Timestamp> next(partitions, 0);
    std::uint64_t tag = 0;
    for (int step = 0; step < 400; ++step) {
      if (rng.NextBool(0.8)) {
        // Skewed appends: low partitions get most of the traffic.
        auto p = static_cast<PartitionId>(
            std::min(rng.NextBounded(partitions), rng.NextBounded(partitions)));
        const std::uint64_t run = 1 + rng.NextBounded(16);
        for (std::uint64_t i = 0; i < run; ++i) {
          next[p] += 1 + rng.NextBounded(30);
          const OpOrderKey key{next[p], p};
          buf.Append(key, tag);
          model.emplace(key, tag);
          ++tag;
        }
      } else {
        // Extract at a random bound, sometimes one that splits an equal-ts
        // group across partitions.
        const Timestamp bound_ts = rng.NextBounded(2000) * (trial + 1);
        const auto bound_p = static_cast<PartitionId>(rng.NextBounded(partitions + 1));
        const OpOrderKey bound{bound_ts, bound_p};
        const Extracted got = Drain(buf, bound);
        Extracted expect;
        while (!model.empty() && !(bound < model.begin()->first)) {
          expect.emplace_back(*model.begin());
          model.erase(model.begin());
        }
        ASSERT_EQ(got, expect) << "trial " << trial << " step " << step;
        ASSERT_EQ(buf.size(), model.size());
      }
    }
    const Extracted tail = Drain(buf, kAll);
    ASSERT_EQ(tail.size(), model.size());
    auto it = model.begin();
    for (const auto& [key, value] : tail) {
      ASSERT_EQ(key, it->first);
      ASSERT_EQ(value, it->second);
      ++it;
    }
  }
}

}  // namespace
}  // namespace eunomia::ordbuf
