// Tests for PartitionedHybridClock: the tie-free hybrid clock whose
// timestamps are congruent to the partition id modulo the stride, plus the
// two-lane server model the protocols run on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/clock/hybrid_clock.h"
#include "src/common/random.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace eunomia {
namespace {

TEST(PartitionedHybridClockTest, ResidueAlwaysMatchesPartition) {
  Rng rng(3);
  for (std::uint32_t p = 0; p < 8; ++p) {
    PartitionedHybridClock clock(p, 8);
    Timestamp dep = 0;
    for (int i = 0; i < 1000; ++i) {
      const Timestamp ts = clock.TimestampUpdate(rng.NextBounded(1'000'000), dep);
      EXPECT_EQ(ts % 8, p);
      if (rng.NextBool(0.5)) {
        dep = ts;  // own update
      } else {
        dep = rng.NextBounded(8'000'000);  // foreign dependency
      }
    }
  }
}

TEST(PartitionedHybridClockTest, StrictlyGreaterThanInputs) {
  PartitionedHybridClock clock(3, 8);
  const Timestamp dep = 123456;
  const Timestamp phys = 777;
  const Timestamp ts = clock.TimestampUpdate(phys, dep);
  EXPECT_GT(ts, dep);
  EXPECT_GT(ts, phys * 8);
  const Timestamp ts2 = clock.TimestampUpdate(phys, 0);
  EXPECT_GT(ts2, ts) << "monotonicity under frozen physical clock";
}

TEST(PartitionedHybridClockTest, NoCollisionsAcrossPartitionsEver) {
  // The whole point: partitions of one datacenter can never issue equal
  // timestamps, no matter how clocks and dependencies interleave.
  Rng rng(17);
  constexpr std::uint32_t kParts = 8;
  std::vector<PartitionedHybridClock> clocks;
  for (std::uint32_t p = 0; p < kParts; ++p) {
    clocks.emplace_back(p, kParts);
  }
  std::set<Timestamp> all;
  Timestamp client = 0;
  std::uint64_t phys = 0;
  for (int i = 0; i < 20000; ++i) {
    phys += rng.NextBounded(3);  // nearly frozen clock: maximal tie pressure
    const auto p = static_cast<std::uint32_t>(rng.NextBounded(kParts));
    const Timestamp ts = clocks[p].TimestampUpdate(phys, client);
    ASSERT_TRUE(all.insert(ts).second) << "timestamp collision at " << ts;
    if (rng.NextBool(0.7)) {
      client = ts;
    }
  }
}

TEST(PartitionedHybridClockTest, HeartbeatGateAndValue) {
  PartitionedHybridClock clock(2, 8);
  const Timestamp ts = clock.TimestampUpdate(1000, 0);
  // Not due immediately after an update with delta 50 us.
  EXPECT_FALSE(clock.HeartbeatDue(1000, 50));
  EXPECT_TRUE(clock.HeartbeatDue(1100, 50));
  const Timestamp hb = clock.HeartbeatValue(1100);
  EXPECT_GT(hb, ts);
  EXPECT_EQ(hb % 8, 2u);
  // An update in the same microsecond still exceeds the heartbeat.
  EXPECT_GT(clock.TimestampUpdate(1100, 0), hb);
}

TEST(PartitionedHybridClockTest, SkewedClientNeverBlocks) {
  PartitionedHybridClock clock(1, 8);
  // Client clock far ahead of physical time: the logical part absorbs it.
  const Timestamp ts = clock.TimestampUpdate(10, 9'999'999);
  EXPECT_GT(ts, 9'999'999u);
  EXPECT_EQ(ts % 8, 1u);
}

TEST(ServerPriorityLaneTest, PriorityCompletesInOwnServiceTime) {
  sim::Simulator sim;
  sim::Server server(&sim);
  std::vector<std::pair<int, sim::SimTime>> done;
  server.Submit(1000, [&] { done.emplace_back(1, sim.now()); });
  server.Submit(1000, [&] { done.emplace_back(2, sim.now()); });
  // Background task arrives while the first client op is in service: it
  // completes after its own cost, not after the client queue.
  sim.ScheduleAt(100, [&] {
    server.SubmitPriority(50, [&] { done.emplace_back(3, sim.now()); });
  });
  sim.RunUntilIdle();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], std::make_pair(3, sim::SimTime{150}));
  EXPECT_EQ(done[1].first, 1);
  // The stolen 50 us are charged to the client lane: the second op finishes
  // at 1000 + (1000 + 50) = 2050.
  EXPECT_EQ(done[2], std::make_pair(2, sim::SimTime{2050}));
}

TEST(ServerPriorityLaneTest, StolenCyclesAreConserved) {
  // Total busy time equals total submitted work regardless of lane mix.
  sim::Simulator sim;
  sim::Server server(&sim);
  server.Submit(300, [] {});
  server.SubmitPriority(100, [] {});
  server.SubmitPriority(50, [] {});
  server.Submit(200, [] {});
  sim.RunUntilIdle();
  EXPECT_EQ(server.busy_accum(), 650u);
  EXPECT_EQ(server.tasks(), 4u);
}

TEST(ServerPriorityLaneTest, BackgroundThroughputThrottlesClientLane) {
  // A steady 50% background load must roughly halve the client lane's
  // throughput — the capacity-theft mechanism behind the Fig. 5 gaps.
  sim::Simulator sim;
  sim::Server server(&sim);
  // Background: 500 us of work every 1 ms.
  std::function<void()> background = [&] {
    server.SubmitPriority(500, [] {});
    sim.ScheduleAfter(1000, background);
  };
  sim.ScheduleAfter(0, background);
  // Client lane: closed loop of 100 us ops.
  std::uint64_t completed = 0;
  std::function<void()> client = [&] {
    server.Submit(100, [&] {
      ++completed;
      client();
    });
  };
  client();
  sim.RunUntil(1'000'000);  // 1 s
  // Unloaded: 10000 ops/s. With 50% theft: ~5000.
  EXPECT_GT(completed, 4000u);
  EXPECT_LT(completed, 6000u);
}

}  // namespace
}  // namespace eunomia
