// Unit and property tests for the ordered-buffer substrates: the custom
// red-black tree (the paper's §6 data-structure choice) and the AVL tree.
// Both are exercised through the same typed test suite, plus randomized
// invariant checks after every mutation batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/rbtree/avl_tree.h"
#include "src/rbtree/red_black_tree.h"

namespace eunomia {
namespace {

template <typename Tree>
class OrderedBufferTest : public ::testing::Test {};

using TreeTypes =
    ::testing::Types<RedBlackTree<int, int>, AvlTree<int, int>>;
TYPED_TEST_SUITE(OrderedBufferTest, TreeTypes);

TYPED_TEST(OrderedBufferTest, EmptyTree) {
  TypeParam tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Find(1), nullptr);
  EXPECT_FALSE(tree.Erase(1));
  EXPECT_TRUE(tree.Validate());
}

TYPED_TEST(OrderedBufferTest, InsertFindErase) {
  TypeParam tree;
  EXPECT_TRUE(tree.Insert(5, 50));
  EXPECT_TRUE(tree.Insert(3, 30));
  EXPECT_TRUE(tree.Insert(8, 80));
  EXPECT_FALSE(tree.Insert(5, 55));  // duplicate rejected
  EXPECT_EQ(tree.size(), 3u);
  ASSERT_NE(tree.Find(5), nullptr);
  EXPECT_EQ(*tree.Find(5), 50);  // original value retained
  EXPECT_TRUE(tree.Erase(3));
  EXPECT_FALSE(tree.Contains(3));
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.Validate());
}

TYPED_TEST(OrderedBufferTest, MinKey) {
  TypeParam tree;
  tree.Insert(10, 0);
  tree.Insert(2, 0);
  tree.Insert(7, 0);
  EXPECT_EQ(tree.MinKey(), 2);
  tree.Erase(2);
  EXPECT_EQ(tree.MinKey(), 7);
}

TYPED_TEST(OrderedBufferTest, InOrderTraversal) {
  TypeParam tree;
  Rng rng(42);
  std::set<int> reference;
  for (int i = 0; i < 500; ++i) {
    const int key = static_cast<int>(rng.NextBounded(10000));
    tree.Insert(key, key * 2);
    reference.insert(key);
  }
  std::vector<int> visited;
  tree.ForEach([&visited](const int& k, const int& v) {
    EXPECT_EQ(v, k * 2);
    visited.push_back(k);
  });
  std::vector<int> expected(reference.begin(), reference.end());
  EXPECT_EQ(visited, expected);
}

TYPED_TEST(OrderedBufferTest, ExtractUpToRemovesInOrder) {
  TypeParam tree;
  for (const int k : {9, 1, 7, 3, 5, 2, 8}) {
    tree.Insert(k, k);
  }
  std::vector<std::pair<int, int>> out;
  EXPECT_EQ(tree.ExtractUpTo(5, &out), 4u);
  std::vector<std::pair<int, int>> expected = {{1, 1}, {2, 2}, {3, 3}, {5, 5}};
  EXPECT_EQ(out, expected);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_FALSE(tree.Contains(5));
  EXPECT_TRUE(tree.Contains(7));
  EXPECT_TRUE(tree.Validate());
}

TYPED_TEST(OrderedBufferTest, ExtractUpToBelowMinIsNoop) {
  TypeParam tree;
  tree.Insert(10, 1);
  std::vector<std::pair<int, int>> out;
  EXPECT_EQ(tree.ExtractUpTo(9, &out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 1u);
}

TYPED_TEST(OrderedBufferTest, ExtractEverything) {
  TypeParam tree;
  for (int i = 0; i < 100; ++i) {
    tree.Insert(i, i);
  }
  std::vector<std::pair<int, int>> out;
  EXPECT_EQ(tree.ExtractUpTo(1000, &out), 100u);
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Validate());
}

TYPED_TEST(OrderedBufferTest, Clear) {
  TypeParam tree;
  for (int i = 0; i < 50; ++i) {
    tree.Insert(i, i);
  }
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Validate());
  EXPECT_TRUE(tree.Insert(1, 1));  // usable after clear
}

TYPED_TEST(OrderedBufferTest, MoveSemantics) {
  TypeParam tree;
  tree.Insert(1, 10);
  tree.Insert(2, 20);
  TypeParam moved(std::move(tree));
  EXPECT_EQ(moved.size(), 2u);
  ASSERT_NE(moved.Find(1), nullptr);
  EXPECT_EQ(*moved.Find(1), 10);
  TypeParam assigned;
  assigned.Insert(9, 90);
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 2u);
  EXPECT_FALSE(assigned.Contains(9));
  EXPECT_TRUE(assigned.Validate());
}

// Property test: random interleaving of insert / erase / extract, validated
// against std::map after every batch, with structural invariants checked.
TYPED_TEST(OrderedBufferTest, RandomizedAgainstReference) {
  TypeParam tree;
  std::map<int, int> reference;
  Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 50; ++i) {
      const int op = static_cast<int>(rng.NextBounded(10));
      const int key = static_cast<int>(rng.NextBounded(500));
      if (op < 6) {
        const bool inserted = tree.Insert(key, key + round);
        const bool ref_inserted = reference.emplace(key, key + round).second;
        ASSERT_EQ(inserted, ref_inserted);
      } else if (op < 9) {
        ASSERT_EQ(tree.Erase(key), reference.erase(key) > 0);
      } else {
        const int bound = static_cast<int>(rng.NextBounded(500));
        std::vector<std::pair<int, int>> out;
        tree.ExtractUpTo(bound, &out);
        auto it = reference.begin();
        std::size_t expected_count = 0;
        while (it != reference.end() && it->first <= bound) {
          ASSERT_LT(expected_count, out.size());
          ASSERT_EQ(out[expected_count].first, it->first);
          ASSERT_EQ(out[expected_count].second, it->second);
          it = reference.erase(it);
          ++expected_count;
        }
        ASSERT_EQ(out.size(), expected_count);
      }
    }
    ASSERT_EQ(tree.size(), reference.size());
    ASSERT_TRUE(tree.Validate()) << "invariants violated at round " << round;
  }
  // Final content identical.
  std::vector<std::pair<int, int>> contents;
  tree.ForEach([&contents](const int& k, const int& v) {
    contents.emplace_back(k, v);
  });
  std::vector<std::pair<int, int>> expected(reference.begin(), reference.end());
  EXPECT_EQ(contents, expected);
}

// Sequential ascending insert (the Eunomia hot path: timestamps mostly
// increase) must stay balanced.
TYPED_TEST(OrderedBufferTest, AscendingInsertStaysBalanced) {
  TypeParam tree;
  for (int i = 0; i < 20000; ++i) {
    tree.Insert(i, i);
  }
  EXPECT_TRUE(tree.Validate());
  std::vector<std::pair<int, int>> out;
  EXPECT_EQ(tree.ExtractUpTo(9999, &out), 10000u);
  EXPECT_TRUE(tree.Validate());
  EXPECT_EQ(tree.size(), 10000u);
}

TEST(RedBlackTreeTest, InsertHintedAppendsAndInGapRuns) {
  RedBlackTree<std::uint64_t, std::uint64_t> tree;
  // Appending run: every insert hinted by the previous one.
  RedBlackTree<std::uint64_t, std::uint64_t>::NodeRef hint = nullptr;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    hint = tree.InsertHinted(k * 10, k, hint);
    ASSERT_NE(hint, nullptr);
  }
  EXPECT_TRUE(tree.Validate());
  // In-gap run between existing keys 500 and 510.
  hint = nullptr;
  for (std::uint64_t k = 501; k < 510; ++k) {
    hint = tree.InsertHinted(k, k, hint);
    ASSERT_NE(hint, nullptr);
  }
  EXPECT_TRUE(tree.Validate());
  // Duplicate through the hinted path is still rejected.
  EXPECT_EQ(tree.InsertHinted(505, 0, hint), nullptr);
  EXPECT_EQ(tree.size(), 1009u);
  std::vector<std::uint64_t> keys;
  tree.ForEach([&](const std::uint64_t& k, const std::uint64_t&) {
    keys.push_back(k);
  });
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(RedBlackTreeTest, InsertHintedRandomRunsMatchReference) {
  // Interleaved monotone runs with stale/wrong hints and periodic
  // extraction — the shape AddBatch produces — must keep the invariants and
  // the exact contents of a std::map reference.
  RedBlackTree<std::uint64_t, std::uint64_t> tree;
  std::map<std::uint64_t, std::uint64_t> reference;
  Rng rng(99);
  std::uint64_t next_key = 1;
  for (int round = 0; round < 400; ++round) {
    if (rng.NextBounded(10) < 7) {
      // A monotone run starting at a random point past the extraction
      // frontier, hinted insert per element.
      std::uint64_t k = next_key + rng.NextBounded(50);
      RedBlackTree<std::uint64_t, std::uint64_t>::NodeRef hint = nullptr;
      const std::uint64_t len = 1 + rng.NextBounded(30);
      for (std::uint64_t i = 0; i < len; ++i) {
        k += 1 + rng.NextBounded(5);
        const auto ref = tree.InsertHinted(k, k * 2, hint);
        const bool inserted_ref = reference.emplace(k, k * 2).second;
        ASSERT_EQ(ref != nullptr, inserted_ref);
        if (ref != nullptr) {
          hint = ref;
        }
        next_key = std::max(next_key, k);
      }
    } else {
      // Extraction invalidates all hints (runs above restart from nullptr).
      const std::uint64_t bound = next_key / 2 + rng.NextBounded(next_key + 1);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
      tree.ExtractUpTo(bound, &out);
      std::size_t erased = 0;
      for (auto it = reference.begin();
           it != reference.end() && it->first <= bound;) {
        it = reference.erase(it);
        ++erased;
      }
      ASSERT_EQ(out.size(), erased);
    }
    ASSERT_TRUE(tree.Validate());
  }
  ASSERT_EQ(tree.size(), reference.size());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> contents;
  tree.ForEach([&](const std::uint64_t& k, const std::uint64_t& v) {
    contents.emplace_back(k, v);
  });
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected(
      reference.begin(), reference.end());
  EXPECT_EQ(contents, expected);
}

TEST(RedBlackTreeTest, ValidateDetectsHealthyTreeAfterHeavyChurn) {
  RedBlackTree<std::uint64_t, std::uint64_t> tree;
  Rng rng(13);
  std::set<std::uint64_t> keys;
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t k = rng.NextBounded(1u << 20);
    if (tree.Insert(k, k)) {
      keys.insert(k);
    }
    if (i % 3 == 0 && !keys.empty()) {
      const std::uint64_t victim = *keys.begin();
      EXPECT_TRUE(tree.Erase(victim));
      keys.erase(keys.begin());
    }
  }
  EXPECT_EQ(tree.size(), keys.size());
  EXPECT_TRUE(tree.Validate());
}

}  // namespace
}  // namespace eunomia
