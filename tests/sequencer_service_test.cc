// Tests for the native sequencer services (the §7.1 baseline): monotonic
// grants under concurrency and chain replication behaviour.
#include <gtest/gtest.h>
#include "src/common/sync.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/sequencer/sequencer_service.h"

namespace eunomia::seq {
namespace {

TEST(SequencerServiceTest, GrantsAreSequential) {
  SequencerService service;
  service.Start();
  std::vector<std::uint64_t> grants;
  for (int i = 0; i < 100; ++i) {
    grants.push_back(service.Next());
  }
  service.Stop();
  for (std::size_t i = 0; i < grants.size(); ++i) {
    EXPECT_EQ(grants[i], i + 1);
  }
}

TEST(SequencerServiceTest, ConcurrentClientsGetUniqueGrants) {
  SequencerService service;
  service.Start();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::vector<std::uint64_t>> grants(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &grants, t] {
      for (int i = 0; i < kPerThread; ++i) {
        grants[static_cast<std::size_t>(t)].push_back(service.Next());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  service.Stop();
  std::vector<std::uint64_t> all;
  for (auto& g : grants) {
    // Per-client monotonicity.
    for (std::size_t i = 1; i < g.size(); ++i) {
      EXPECT_LT(g[i - 1], g[i]);
    }
    all.insert(all.end(), g.begin(), g.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i + 1) << "duplicate or gap in grants";
  }
}

TEST(ChainSequencerServiceTest, SingleStageBehavesLikeSequencer) {
  ChainSequencerService service(1);
  service.Start();
  EXPECT_EQ(service.Next(), 1u);
  EXPECT_EQ(service.Next(), 2u);
  service.Stop();
}

TEST(ChainSequencerServiceTest, ThreeStageChainGrantsSequentially) {
  ChainSequencerService service(3);
  service.Start();
  EXPECT_EQ(service.chain_length(), 3u);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    EXPECT_EQ(service.Next(), i);
  }
  service.Stop();
}

TEST(ChainSequencerServiceTest, ConcurrentClientsThroughChain) {
  ChainSequencerService service(3);
  service.Start();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::uint64_t> all;
  eunomia::sync::Mutex mu{"sequencer_service_test::mu", eunomia::sync::kRankLeaf};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<std::uint64_t> mine;
      for (int i = 0; i < kPerThread; ++i) {
        mine.push_back(service.Next());
      }
      eunomia::sync::MutexLock lock(mu);
      all.insert(all.end(), mine.begin(), mine.end());
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  service.Stop();
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i + 1);
  }
}

}  // namespace
}  // namespace eunomia::seq
