// Chaos-harness tests: the fault-injecting environment, nemesis schedules,
// invariant checker, receiver edge cases under injected faults, geo wire
// codec robustness, and the real-TCP GeoNode reconnect machinery.
//
// Everything simulated here is deterministic: fixed seeds, and the nemesis
// determinism test pins that two runs of one seed produce bit-identical
// digests (the property that makes "re-run with the printed seed" a real
// repro, not a suggestion).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/georep/config.h"
#include "src/georep/receiver.h"
#include "src/georep/remote_update.h"
#include "src/georep/runtime/chaos/chaos_cluster.h"
#include "src/georep/runtime/chaos/faulty_env.h"
#include "src/georep/runtime/chaos/invariants.h"
#include "src/georep/runtime/chaos/nemesis.h"
#include "src/georep/runtime/geo_node.h"
#include "src/georep/runtime/geo_wire.h"
#include "src/net/tcp_transport.h"
#include "src/sim/simulator.h"

namespace eunomia {
namespace {

namespace chaos = geo::rt::chaos;
namespace gw = geo::rt::wire;

using geo::GeoConfig;
using geo::Receiver;
using geo::RemotePayload;
using geo::RemoteUpdate;
using geo::VectorTimestamp;

// --- receiver unit tests -----------------------------------------------------

RemoteUpdate ScalarUpdate(std::uint64_t uid, DatacenterId origin,
                          Timestamp ts, std::uint32_t num_dcs) {
  RemoteUpdate u;
  u.uid = uid;
  u.key = uid;
  u.vts = VectorTimestamp(num_dcs);
  for (DatacenterId d = 0; d < num_dcs; ++d) {
    u.vts[d] = ts;
  }
  u.origin = origin;
  return u;
}

// Regression test for a real liveness bug the nemesis sweep found (seed 16
// of the 200-seed run): in scalar mode, two queue heads carrying the SAME
// timestamp from different origins blocked each other forever — each saw
// the other's head with ts <= its own dependency bound. Equal-timestamp
// updates from different origins are causally concurrent (the hybrid clock
// stamps strictly above everything a session observed), so the receiver
// serializes ties by datacenter id instead of deadlocking.
TEST(ReceiverScalar, EqualTimestampHeadsDoNotDeadlock) {
  std::vector<std::uint64_t> applied;
  Receiver receiver(
      /*self=*/0, /*num_dcs=*/3,
      [&applied](const RemoteUpdate& u, std::function<void()> done) {
        applied.push_back(u.uid);
        done();
      },
      /*scalar_mode=*/true);

  // Both updates queue before any frontier beacon arrives, so neither can
  // apply yet — the pre-fix deadlock needs both heads present.
  receiver.OnRemoteUpdate(ScalarUpdate(1, /*origin=*/1, /*ts=*/5, 3));
  receiver.OnRemoteUpdate(ScalarUpdate(2, /*origin=*/2, /*ts=*/5, 3));
  ASSERT_TRUE(applied.empty());

  receiver.OnFrontier(1, 10);
  receiver.OnFrontier(2, 10);

  // Tie broken by datacenter id: origin 1 first, then origin 2.
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0], 1u);
  EXPECT_EQ(applied[1], 2u);
  EXPECT_EQ(receiver.PendingCount(), 0u);
}

// A restarted origin re-announces a low stable frontier; the receiver must
// keep its high-water mark (OnFrontier ignores regressions) or already-
// granted visibility would be retroactively unjustified.
TEST(ReceiverScalar, FrontierIgnoresRegressionAfterRestart) {
  Receiver receiver(
      0, 3, [](const RemoteUpdate&, std::function<void()> done) { done(); },
      /*scalar_mode=*/true);
  receiver.OnFrontier(1, 100);
  EXPECT_EQ(receiver.frontier_of(1), 100u);
  receiver.OnFrontier(1, 7);  // restarted dc1 starts its frontier over
  EXPECT_EQ(receiver.frontier_of(1), 100u);
  receiver.OnFrontier(1, 150);
  EXPECT_EQ(receiver.frontier_of(1), 150u);
}

// --- chaos cluster under the sim binding -------------------------------------

GeoConfig SmallConfig(std::uint32_t num_dcs, bool scalar) {
  GeoConfig config;
  config.num_dcs = num_dcs;
  config.partitions_per_dc = 2;
  config.servers_per_dc = 1;
  config.scalar_metadata = scalar;
  config.network.wan_one_way_us.assign(
      num_dcs, std::vector<sim::SimTime>(num_dcs, 0));
  for (DatacenterId i = 0; i < num_dcs; ++i) {
    for (DatacenterId j = 0; j < num_dcs; ++j) {
      if (i != j) {
        config.network.wan_one_way_us[i][j] = 5'000;
      }
    }
  }
  return config;
}

chaos::ChaosOptions ClusterOpts(const GeoConfig& config, std::uint64_t seed,
                                const chaos::FaultProfile& profile = {}) {
  chaos::ChaosOptions options;
  options.config = config;
  options.profile = profile;
  options.seed = seed;
  return options;
}

chaos::InvariantOptions GenerousBound(const chaos::ChaosCluster& cluster,
                                      const GeoConfig& config) {
  chaos::InvariantOptions iopts;
  iopts.staleness_bound_us =
      static_cast<std::uint64_t>(cluster.max_clock_error_us()) +
      config.delta_us + config.batch_interval_us + config.theta_us +
      config.rho_us + 100'000;
  return iopts;
}

// Schedules fire-and-forget client updates at dc `dc` every `period_us`
// inside [from_us, to_us).
void ScheduleWrites(sim::Simulator* sim, chaos::ChaosCluster* cluster,
                    DatacenterId dc, std::uint64_t from_us,
                    std::uint64_t to_us, std::uint64_t period_us) {
  int i = 0;
  for (std::uint64_t t = from_us; t < to_us; t += period_us, ++i) {
    sim->ScheduleAt(t, [cluster, dc, i] {
      if (!cluster->alive(dc)) {
        return;
      }
      cluster->runtime(dc)->ClientUpdate(
          /*client=*/100 + dc, /*key=*/static_cast<Key>(i % 16),
          "d" + std::to_string(dc) + "-i" + std::to_string(i), [] {});
    });
  }
}

TEST(ChaosCluster, FaultFreeScheduleHasNoViolations) {
  for (const bool scalar : {false, true}) {
    const GeoConfig config = SmallConfig(3, scalar);
    sim::Simulator sim(7);
    chaos::ChaosCluster cluster(&sim, ClusterOpts(config, /*seed=*/7));
    cluster.Start();
    for (DatacenterId dc = 0; dc < 3; ++dc) {
      ScheduleWrites(&sim, &cluster, dc, 20'000, 400'000, 7'000);
    }
    sim.RunUntil(2'000'000);
    const auto violations =
        chaos::CheckInvariants(cluster, GenerousBound(cluster, config));
    EXPECT_TRUE(violations.empty())
        << (scalar ? "scalar" : "vector") << ": " << violations.size()
        << " violations, first: "
        << (violations.empty() ? "" : violations[0].detail);
  }
}

TEST(ChaosCluster, CrashRestartConvergesAndFrontierStaysMonotone) {
  const GeoConfig config = SmallConfig(3, /*scalar=*/true);
  sim::Simulator sim(11);
  chaos::ChaosCluster cluster(&sim, ClusterOpts(config, /*seed=*/11));
  cluster.Start();
  ScheduleWrites(&sim, &cluster, 0, 20'000, 500'000, 5'000);
  ScheduleWrites(&sim, &cluster, 2, 25'000, 500'000, 5'000);

  // dc1 dies with total state loss mid-run and is rebooted 200 ms later;
  // dc0's view of dc1's frontier must never regress across the restart.
  Timestamp frontier_before_crash = 0;
  sim.ScheduleAt(150'000, [&cluster, &frontier_before_crash] {
    frontier_before_crash = cluster.runtime(0)->receiver().frontier_of(1);
    cluster.Crash(1);
  });
  sim.ScheduleAt(350'000, [&cluster] { cluster.Restart(1); });

  sim.RunUntil(2'500'000);
  ASSERT_TRUE(cluster.alive(1));
  EXPECT_EQ(cluster.env().stats().crashes, 1u);
  EXPECT_EQ(cluster.env().stats().restarts, 1u);
  EXPECT_GE(cluster.runtime(0)->receiver().frontier_of(1),
            frontier_before_crash);
  const auto violations =
      chaos::CheckInvariants(cluster, GenerousBound(cluster, config));
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations[0].detail);
}

// A payload redelivered after its update already became visible (an
// at-least-once channel, or a crash-recovery re-ship racing the original)
// must be dropped by uid/timestamp dedup without disturbing the store.
TEST(ChaosCluster, DuplicatePayloadAfterVisibilityIsDropped) {
  const GeoConfig config = SmallConfig(2, /*scalar=*/false);
  sim::Simulator sim(3);
  chaos::ChaosCluster cluster(&sim, ClusterOpts(config, /*seed=*/3));
  cluster.Start();
  sim.ScheduleAt(10'000, [&cluster] {
    cluster.runtime(0)->ClientUpdate(100, /*key=*/1, "original", [] {});
  });
  sim.RunUntil(1'000'000);

  ASSERT_EQ(cluster.env().install_log(0).size(), 1u);
  const auto& record = cluster.env().install_log(0)[0];
  geo::rt::DatacenterRuntime* dc1 = cluster.runtime(1);
  ASSERT_GT(dc1->receiver().site_time()[0], 0u) << "update never applied";
  ASSERT_EQ(dc1->payload_duplicates(), 0u);

  dc1->OnPayload(record.partition, record.payload);  // exact redelivery
  EXPECT_EQ(dc1->payload_duplicates(), 1u);
  EXPECT_EQ(dc1->BufferedPayloads(), 0u);  // not buffered, dropped outright

  std::map<Key, std::string> values;
  dc1->StoreAt(record.partition)
      .ForEach([&values](Key key, const geo::GeoVersion& v) {
        values[key] = v.value;
      });
  EXPECT_EQ(values[1], "original");
}

// Benign payload loss: the channel drops payloads but re-ships them later
// (at-least-once). Go-aheads park until the re-shipped copy arrives, then
// everything drains — parked applies and buffers must be empty at the end.
TEST(ChaosCluster, LostThenReshippedPayloadDrains) {
  const GeoConfig config = SmallConfig(2, /*scalar=*/false);
  chaos::FaultProfile profile;
  profile.payload_drop = 0.5;
  profile.reship_delay_us = 30'000;
  sim::Simulator sim(13);
  chaos::ChaosCluster cluster(&sim, ClusterOpts(config, /*seed=*/13, profile));
  cluster.Start();
  ScheduleWrites(&sim, &cluster, 0, 10'000, 300'000, 4'000);
  sim.RunUntil(2'000'000);

  EXPECT_GT(cluster.env().stats().payloads_dropped, 0u);
  EXPECT_EQ(cluster.runtime(1)->PendingApplyCount(), 0u);
  EXPECT_EQ(cluster.runtime(1)->BufferedPayloads(), 0u);
  const auto violations =
      chaos::CheckInvariants(cluster, GenerousBound(cluster, config));
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations[0].detail);
}

// --- nemesis schedules -------------------------------------------------------

TEST(Nemesis, SameSeedSameDigest) {
  chaos::NemesisOptions options;
  options.seed = 42;
  options.smoke = true;
  const chaos::NemesisReport a = chaos::RunNemesisSchedule(options);
  const chaos::NemesisReport b = chaos::RunNemesisSchedule(options);
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_TRUE(a.ok()) << a.Digest();
}

TEST(Nemesis, PlantedBugIsCaughtAndReproducible) {
  chaos::NemesisOptions options;
  options.smoke = true;
  options.plant = chaos::Plant::kDropPayload;
  std::uint64_t violating_seed = 0;
  std::string digest;
  for (std::uint64_t seed = 1; seed <= 4 && violating_seed == 0; ++seed) {
    options.seed = seed;
    const chaos::NemesisReport report = chaos::RunNemesisSchedule(options);
    if (!report.ok()) {
      violating_seed = seed;
      digest = report.Digest();
    }
  }
  ASSERT_NE(violating_seed, 0u)
      << "silently dropped payloads never tripped any invariant";
  // The printed seed alone must reproduce the violation bit-for-bit.
  options.seed = violating_seed;
  const chaos::NemesisReport again = chaos::RunNemesisSchedule(options);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.Digest(), digest);
}

// --- geo wire codec fuzz-lite ------------------------------------------------

// Every truncation of a valid frame must be rejected, and no corruption may
// crash a decoder (flipped frames may still decode — only structural
// integrity is enforced at this layer). Fixed seed: failures replay.
TEST(GeoWireFuzz, TruncationsRejectedAndBitFlipsNeverCrash) {
  gw::GeoHelloMsg hello;
  hello.dc = 1;
  hello.num_dcs = 3;
  hello.partitions = 4;
  hello.link_kind = gw::kPayloadLink;

  std::vector<RemoteUpdate> updates;
  for (std::uint64_t i = 0; i < 5; ++i) {
    RemoteUpdate u = ScalarUpdate(i + 1, 1, 100 + i, 3);
    u.partition = static_cast<PartitionId>(i % 4);
    updates.push_back(u);
  }

  gw::GeoFrontierMsg frontier;
  frontier.origin = 2;
  frontier.frontier = 123'456;

  gw::GeoPayloadMsg payload_msg;
  payload_msg.partition = 3;
  payload_msg.payload =
      RemotePayload{9, 7, "value-bytes", VectorTimestamp(3), 1};

  struct Codec {
    std::string frame;
    std::function<bool(std::string_view)> decode;
  };
  const std::vector<Codec> codecs = {
      {gw::EncodeGeoHello(hello),
       [](std::string_view p) {
         gw::GeoHelloMsg m;
         return gw::DecodeGeoHello(p, &m);
       }},
      {gw::EncodeGeoMetaBatch(1, updates.data(), updates.size()),
       [](std::string_view p) {
         gw::GeoMetaBatchMsg m;
         return gw::DecodeGeoMetaBatch(p, &m);
       }},
      {gw::EncodeGeoFrontier(frontier),
       [](std::string_view p) {
         gw::GeoFrontierMsg m;
         return gw::DecodeGeoFrontier(p, &m);
       }},
      {gw::EncodeGeoPayload(payload_msg),
       [](std::string_view p) {
         gw::GeoPayloadMsg m;
         return gw::DecodeGeoPayload(p, &m);
       }},
  };

  for (const Codec& codec : codecs) {
    ASSERT_TRUE(codec.decode(codec.frame));
    for (std::size_t len = 0; len < codec.frame.size(); ++len) {
      EXPECT_FALSE(codec.decode(std::string_view(codec.frame.data(), len)))
          << "truncation to " << len << " of " << codec.frame.size()
          << " bytes accepted";
    }
  }

  Rng rng(0x67656f77697265ULL);  // pinned: any failure replays exactly
  for (int iter = 0; iter < 2000; ++iter) {
    const Codec& codec = codecs[rng.NextBounded(codecs.size())];
    std::string corrupted = codec.frame;
    const std::size_t byte = rng.NextBounded(corrupted.size());
    corrupted[byte] = static_cast<char>(
        static_cast<unsigned char>(corrupted[byte]) ^
        (1u << rng.NextBounded(8)));
    (void)codec.decode(corrupted);  // must not crash or hang; result free
  }
}

// --- real TCP GeoNode binding ------------------------------------------------

// ConnectPeer is retryable: a peer that boots after the first dial attempt
// is found by a later one instead of being a permanent failure.
TEST(GeoNodeTcp, ConnectPeerRetriesUntilPeerBoots) {
  using geo::rt::GeoNode;
  GeoConfig config = SmallConfig(2, false);

  GeoNode::Options options0;
  options0.dc = 0;
  options0.config = config;
  options0.connect_attempts = 12;
  options0.connect_backoff_ms = 25;
  GeoNode::Options options1 = options0;
  options1.dc = 1;

  net::TcpTransport transport0;
  GeoNode node0(&transport0, options0);
  ASSERT_FALSE(node0.Listen("127.0.0.1:0").empty());

  // Grab a concrete port for dc1, then free it again: dc0 starts dialing an
  // address nobody listens on yet.
  std::string addr1;
  {
    net::TcpTransport probe;
    GeoNode ephemeral(&probe, options1);
    addr1 = ephemeral.Listen("127.0.0.1:0");
    ASSERT_FALSE(addr1.empty());
    ephemeral.Stop();
  }

  std::unique_ptr<net::TcpTransport> transport1;
  std::unique_ptr<GeoNode> node1;
  std::thread late_booter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    transport1 = std::make_unique<net::TcpTransport>();
    node1 = std::make_unique<GeoNode>(transport1.get(), options1);
    ASSERT_EQ(node1->Listen(addr1), addr1);
  });

  EXPECT_TRUE(node0.ConnectPeer(1, addr1));
  late_booter.join();
  node0.Stop();
  if (node1 != nullptr) {
    node1->Stop();
  }
}

// The highest-value chaos scenario on the real binding: the remote peer
// dies with total state loss mid-traffic, reboots on the same address, and
// the survivor's background re-dial plus retained-history replay brings it
// back to an identical store.
TEST(GeoNodeTcp, PeerDeathReconnectCatchUp) {
  using geo::rt::GeoNode;
  GeoConfig config = SmallConfig(2, false);

  GeoNode::Options options0;
  options0.dc = 0;
  options0.config = config;
  options0.retain_peer_history = true;
  options0.reconnect_backoff_ms = 20;
  options0.reconnect_backoff_max_ms = 100;
  GeoNode::Options options1 = options0;
  options1.dc = 1;

  auto transport0 = std::make_unique<net::TcpTransport>();
  auto transport1 = std::make_unique<net::TcpTransport>();
  auto node0 = std::make_unique<GeoNode>(transport0.get(), options0);
  auto node1 = std::make_unique<GeoNode>(transport1.get(), options1);
  const std::string addr0 = node0->Listen("127.0.0.1:0");
  const std::string addr1 = node1->Listen("127.0.0.1:0");
  ASSERT_FALSE(addr0.empty());
  ASSERT_FALSE(addr1.empty());
  ASSERT_TRUE(node0->ConnectPeer(1, addr1));
  ASSERT_TRUE(node1->ConnectPeer(0, addr0));
  node0->Start();
  node1->Start();

  std::atomic<bool> stop{false};
  auto issue = std::make_shared<std::function<void(int)>>();
  GeoNode* writer = node0.get();
  *issue = [writer, issue, &stop](int i) {
    if (stop.load(std::memory_order_relaxed)) {
      return;
    }
    writer->ClientUpdate(100, static_cast<Key>(i % 32),
                         "v" + std::to_string(i),
                         [issue, i] { (*issue)(i + 1); });
  };
  (*issue)(0);

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  node1.reset();  // peer death: all of dc1's state is gone
  transport1.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  transport1 = std::make_unique<net::TcpTransport>();
  node1 = std::make_unique<GeoNode>(transport1.get(), options1);
  ASSERT_EQ(node1->Listen(addr1), addr1) << "could not rebind after reboot";
  ASSERT_TRUE(node1->ConnectPeer(0, addr0));
  node1->Start();

  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  EXPECT_GE(node0->reconnects(), 1u);

  auto snapshot = [&config](GeoNode* node) {
    std::map<Key, std::string> out;
    node->RunBlocking([&] {
      for (PartitionId p = 0; p < config.partitions_per_dc; ++p) {
        node->runtime().StoreAt(p).ForEach(
            [&out](Key key, const geo::GeoVersion& v) { out[key] = v.value; });
      }
    });
    return out;
  };

  // Writer ops still in flight at stop time drain through dc0's event loop
  // after this point, so the oracle is re-snapshotted each poll instead of
  // frozen once: converged means both FINAL states match.
  std::map<Key, std::string> expected;
  bool converged = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(8);
  while (std::chrono::steady_clock::now() < deadline) {
    expected = snapshot(node0.get());
    if (!expected.empty() && snapshot(node1.get()) == expected) {
      converged = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_FALSE(expected.empty());
  std::size_t got_keys = 0;
  std::size_t pending = 0;
  std::uint64_t buffered = 0;
  std::uint64_t parked = 0;
  node1->RunBlocking([&] {
    for (PartitionId p = 0; p < config.partitions_per_dc; ++p) {
      node1->runtime().StoreAt(p).ForEach(
          [&got_keys](Key, const geo::GeoVersion&) { ++got_keys; });
    }
    pending = node1->runtime().receiver().PendingCount();
    buffered = node1->runtime().BufferedPayloads();
    parked = node1->runtime().PendingApplyCount();
  });
  EXPECT_TRUE(converged) << "rebooted peer never caught up to "
                         << expected.size() << " keys: has " << got_keys
                         << " keys, pending=" << pending << " buffered="
                         << buffered << " parked=" << parked
                         << "; node0 reconnects=" << node0->reconnects()
                         << " send_failures=" << node0->send_failures()
                         << " wire_errors=" << node0->wire_errors()
                         << " node1 wire_errors=" << node1->wire_errors();

  node0->Stop();
  node1->Stop();
  // Break the writer chain's self-reference cycle (the function captures
  // the shared_ptr that owns it) now that both event loops are joined.
  *issue = nullptr;
}

}  // namespace
}  // namespace eunomia
