// Tests for the §5 propagation-tree optimization: topology invariants and
// an end-to-end relay pipeline feeding EunomiaCore.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/random.h"
#include "src/eunomia/core.h"
#include "src/eunomia/propagation_tree.h"

namespace eunomia {
namespace {

TEST(PropagationTreeTest, ParentChildConsistency) {
  for (const std::uint32_t n : {1u, 2u, 7u, 8u, 9u, 64u}) {
    for (const std::uint32_t fanout : {2u, 4u, 8u}) {
      PropagationTree tree(n, fanout);
      for (std::uint32_t node = 0; node < n; ++node) {
        const auto children = tree.Children(node);
        EXPECT_LE(children.size(), fanout);
        for (const std::uint32_t child : children) {
          ASSERT_LT(child, n);
          EXPECT_EQ(tree.Parent(child), node);
        }
      }
      EXPECT_EQ(tree.Parent(0), std::nullopt);
      EXPECT_TRUE(tree.IsRoot(0));
    }
  }
}

TEST(PropagationTreeTest, EveryNodeReachesRoot) {
  PropagationTree tree(100, 4);
  for (std::uint32_t node = 0; node < 100; ++node) {
    std::uint32_t cur = node;
    int hops = 0;
    while (!tree.IsRoot(cur)) {
      cur = *tree.Parent(cur);
      ASSERT_LT(++hops, 100) << "cycle";
    }
    EXPECT_EQ(static_cast<std::uint32_t>(hops), tree.Depth(node));
  }
}

TEST(PropagationTreeTest, DepthIsLogarithmic) {
  PropagationTree tree(1000, 4);
  std::uint32_t max_depth = 0;
  for (std::uint32_t node = 0; node < 1000; ++node) {
    max_depth = std::max(max_depth, tree.Depth(node));
  }
  // ceil(log4(1000)) == 5.
  EXPECT_LE(max_depth, 5u);
  EXPECT_GE(max_depth, 4u);
}

TEST(TreeRelayTest, MergesChildrenAndLocalOps) {
  TreeRelay relay(4);
  relay.AddLocal({OpRecord{10, 0, 0, 0}, OpRecord{20, 0, 0, 0}});
  TreeRelay::Payload child;
  child.ops = {OpRecord{15, 1, 0, 0}};
  child.heartbeats = {{2, 100}};
  relay.OnChildPayload(child);
  EXPECT_TRUE(relay.HasPending());
  const auto up = relay.TakeUpstream();
  EXPECT_EQ(up.ops.size(), 3u);
  ASSERT_EQ(up.heartbeats.size(), 1u);
  EXPECT_EQ(up.heartbeats[0], (std::pair<PartitionId, Timestamp>{2, 100}));
  EXPECT_FALSE(relay.HasPending());
}

TEST(TreeRelayTest, HeartbeatsKeepOnlyFreshest) {
  TreeRelay relay(2);
  relay.AddLocalHeartbeat(0, 50);
  relay.AddLocalHeartbeat(0, 40);  // stale, ignored
  relay.AddLocalHeartbeat(0, 60);
  const auto up = relay.TakeUpstream();
  ASSERT_EQ(up.heartbeats.size(), 1u);
  EXPECT_EQ(up.heartbeats[0].second, 60u);
}

// End-to-end: N partitions flushing through a fanout-4 tree into
// EunomiaCore. All ops stabilize, in total order, and the number of
// messages the root forwards to Eunomia is one per flush round instead of
// one per partition — the point of the optimization.
TEST(TreeRelayTest, PipelineDeliversEverythingInOrder) {
  constexpr std::uint32_t kPartitions = 16;
  constexpr std::uint32_t kFanout = 4;
  PropagationTree tree(kPartitions, kFanout);
  std::vector<TreeRelay> relays;
  for (std::uint32_t i = 0; i < kPartitions; ++i) {
    relays.emplace_back(kPartitions);
  }
  EunomiaCore core(kPartitions);
  Rng rng(42);
  std::vector<Timestamp> next_ts(kPartitions, 1);
  std::uint64_t produced = 0;
  std::uint64_t root_messages = 0;
  std::vector<OpRecord> emitted;

  for (int round = 0; round < 200; ++round) {
    // Each partition creates 0-2 ops locally or heartbeats.
    for (std::uint32_t p = 0; p < kPartitions; ++p) {
      const std::uint64_t n = rng.NextBounded(3);
      if (n == 0) {
        next_ts[p] += 5;
        relays[p].AddLocalHeartbeat(static_cast<PartitionId>(p), next_ts[p]);
        continue;
      }
      std::vector<OpRecord> ops;
      for (std::uint64_t i = 0; i < n; ++i) {
        next_ts[p] += 1 + rng.NextBounded(4);
        ops.push_back(OpRecord{next_ts[p], static_cast<PartitionId>(p), 0, 0});
        ++produced;
      }
      relays[p].AddLocal(ops);
    }
    // Flush leaves-to-root (deepest first so payloads move one level per
    // round at least; FIFO order within each link is inherent here).
    for (std::uint32_t node = kPartitions; node-- > 1;) {
      if (relays[node].HasPending()) {
        relays[*tree.Parent(node)].OnChildPayload(relays[node].TakeUpstream());
      }
    }
    if (relays[0].HasPending()) {
      ++root_messages;
      const auto payload = relays[0].TakeUpstream();
      for (const OpRecord& op : payload.ops) {
        ASSERT_TRUE(core.AddOp(op)) << "FIFO per partition broken by the tree";
      }
      for (const auto& [partition, ts] : payload.heartbeats) {
        core.Heartbeat(partition, ts);
      }
    }
    core.ProcessStable(&emitted);
  }
  // Drain.
  for (int round = 0; round < 10; ++round) {
    for (std::uint32_t node = kPartitions; node-- > 1;) {
      if (relays[node].HasPending()) {
        relays[*tree.Parent(node)].OnChildPayload(relays[node].TakeUpstream());
      }
    }
    if (relays[0].HasPending()) {
      const auto payload = relays[0].TakeUpstream();
      for (const OpRecord& op : payload.ops) {
        ASSERT_TRUE(core.AddOp(op));
      }
      for (const auto& [partition, ts] : payload.heartbeats) {
        core.Heartbeat(partition, ts);
      }
    }
  }
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    core.Heartbeat(static_cast<PartitionId>(p), next_ts[p] + 100);
  }
  core.ProcessStable(&emitted);

  EXPECT_EQ(emitted.size(), produced);
  for (std::size_t i = 1; i < emitted.size(); ++i) {
    const bool ordered = emitted[i - 1].ts < emitted[i].ts ||
                         (emitted[i - 1].ts == emitted[i].ts &&
                          emitted[i - 1].partition < emitted[i].partition);
    EXPECT_TRUE(ordered);
  }
  // Message reduction: at most one root message per round, versus
  // kPartitions per round in the all-to-one scheme.
  EXPECT_LE(root_messages, 200u);
}

}  // namespace
}  // namespace eunomia
