// Tests for EunomiaCore — the site stabilization procedure (Algorithm 3) —
// and its safety properties under randomized multi-partition streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/clock/hybrid_clock.h"
#include "src/clock/physical_clock.h"
#include "src/common/random.h"
#include "src/eunomia/core.h"

namespace eunomia {
namespace {

OpRecord Op(Timestamp ts, PartitionId p, Key key = 0, std::uint64_t tag = 0) {
  return OpRecord{ts, p, key, tag};
}

TEST(EunomiaCoreTest, StableTimeIsZeroUntilAllPartitionsHeard) {
  EunomiaCore core(3);
  core.AddOp(Op(100, 0));
  core.AddOp(Op(200, 1));
  EXPECT_EQ(core.StableTime(), 0u);  // partition 2 silent
  std::vector<OpRecord> out;
  EXPECT_EQ(core.ProcessStable(&out), 0u);
  core.Heartbeat(2, 150);
  EXPECT_EQ(core.StableTime(), 100u);
}

TEST(EunomiaCoreTest, ProcessStableEmitsPrefixInTimestampOrder) {
  EunomiaCore core(2);
  core.AddOp(Op(50, 0, 1));
  core.AddOp(Op(70, 0, 2));
  core.AddOp(Op(60, 1, 3));
  core.AddOp(Op(90, 1, 4));
  // StableTime = min(70, 90) = 70: ops 50, 60, 70 are stable.
  std::vector<OpRecord> out;
  EXPECT_EQ(core.ProcessStable(&out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].ts, 50u);
  EXPECT_EQ(out[1].ts, 60u);
  EXPECT_EQ(out[2].ts, 70u);
  EXPECT_EQ(core.pending_ops(), 1u);
}

TEST(EunomiaCoreTest, HeartbeatsAdvanceStabilityWithoutOps) {
  EunomiaCore core(2);
  core.AddOp(Op(100, 0));
  core.Heartbeat(1, 500);  // idle partition catches up via heartbeat
  std::vector<OpRecord> out;
  EXPECT_EQ(core.ProcessStable(&out), 1u);
  EXPECT_EQ(out[0].ts, 100u);
}

TEST(EunomiaCoreTest, StaleHeartbeatIgnored) {
  EunomiaCore core(1);
  core.AddOp(Op(100, 0));
  core.Heartbeat(0, 50);  // stale: must not move PartitionTime backwards
  EXPECT_EQ(core.partition_time(0), 100u);
}

TEST(EunomiaCoreTest, NonMonotonicOpRejected) {
  EunomiaCore core(1);
  EXPECT_TRUE(core.AddOp(Op(100, 0)));
  EXPECT_FALSE(core.AddOp(Op(100, 0)));  // equal: Property 2 violation
  EXPECT_FALSE(core.AddOp(Op(50, 0)));   // smaller
  EXPECT_EQ(core.monotonicity_violations(), 2u);
  EXPECT_EQ(core.pending_ops(), 1u);
}

TEST(EunomiaCoreTest, EqualTimestampsAcrossPartitionsBothEmitted) {
  // Concurrent updates on different partitions may share a timestamp; both
  // are stable once every partition passed it, ordered by partition id.
  EunomiaCore core(2);
  core.AddOp(Op(100, 1, 11));
  core.AddOp(Op(100, 0, 22));
  std::vector<OpRecord> out;
  EXPECT_EQ(core.ProcessStable(&out), 2u);
  EXPECT_EQ(out[0].partition, 0u);
  EXPECT_EQ(out[1].partition, 1u);
}

TEST(EunomiaCoreTest, EmissionNeverRegresses) {
  EunomiaCore core(2);
  core.AddOp(Op(10, 0));
  core.AddOp(Op(20, 1));
  std::vector<OpRecord> out;
  core.ProcessStable(&out);
  const Timestamp watermark = core.last_emitted();
  core.AddOp(Op(30, 0));
  core.AddOp(Op(40, 1));
  out.clear();
  core.ProcessStable(&out);
  for (const OpRecord& op : out) {
    EXPECT_GT(op.ts, watermark);
  }
}

TEST(EunomiaCoreTest, ForceExtractIgnoresOwnStableTime) {
  EunomiaCore core(2);
  core.AddOp(Op(100, 0));
  // Partition 1 silent: own StableTime is 0, but the (leader's) notice says
  // everything <= 100 was shipped.
  std::vector<OpRecord> out;
  EXPECT_EQ(core.ForceExtractUpTo(100, &out), 1u);
  EXPECT_EQ(core.pending_ops(), 0u);
}

TEST(EunomiaCoreTest, CountersTrack) {
  EunomiaCore core(2);
  core.AddOp(Op(1, 0));
  core.AddOp(Op(2, 1));
  core.Heartbeat(0, 10);
  std::vector<OpRecord> out;
  core.ProcessStable(&out);
  EXPECT_EQ(core.ops_received(), 2u);
  EXPECT_EQ(core.heartbeats_received(), 1u);
  EXPECT_EQ(core.ops_emitted(), 2u);
}

TEST(EunomiaCoreTest, AddBatchMatchesAddOpLoop) {
  // The hinted bulk path must be observationally identical to per-op adds.
  Rng rng(7);
  EunomiaCore bulk(3);
  EunomiaCore scalar(3);
  std::vector<Timestamp> next(3, 0);
  for (int round = 0; round < 50; ++round) {
    const auto p = static_cast<PartitionId>(rng.NextBounded(3));
    std::vector<OpRecord> batch;
    const std::uint64_t n = 1 + rng.NextBounded(40);
    for (std::uint64_t i = 0; i < n; ++i) {
      next[p] += 1 + rng.NextBounded(20);
      batch.push_back(Op(next[p], p, 0, rng.NextBounded(1000)));
    }
    EXPECT_EQ(bulk.AddBatch(batch), batch.size());
    for (const OpRecord& op : batch) {
      EXPECT_TRUE(scalar.AddOp(op));
    }
  }
  EXPECT_EQ(bulk.pending_ops(), scalar.pending_ops());
  EXPECT_EQ(bulk.ops_received(), scalar.ops_received());
  for (PartitionId p = 0; p < 3; ++p) {
    bulk.Heartbeat(p, next[p] + 100);
    scalar.Heartbeat(p, next[p] + 100);
  }
  std::vector<OpRecord> bulk_out;
  std::vector<OpRecord> scalar_out;
  bulk.ProcessStable(&bulk_out);
  scalar.ProcessStable(&scalar_out);
  EXPECT_EQ(bulk_out, scalar_out);
}

TEST(EunomiaCoreTest, AddBatchDropsNonMonotoneOpsAndContinues) {
  EunomiaCore core(1);
  const std::vector<OpRecord> batch = {Op(10, 0), Op(20, 0), Op(15, 0),
                                       Op(30, 0)};
  EXPECT_EQ(core.AddBatch(batch), 3u);  // 15 regresses behind 20
  EXPECT_EQ(core.monotonicity_violations(), 1u);
  EXPECT_EQ(core.pending_ops(), 3u);
  EXPECT_EQ(core.partition_time(0), 30u);
}

TEST(EunomiaCoreTest, PartitionBaseMapsGlobalIdsOntoShardRange) {
  // A shard core owning global partitions [4, 7) keeps global ids on its
  // ops and emits them unchanged.
  EunomiaCore core(3, /*first_partition=*/4);
  EXPECT_TRUE(core.AddOp(Op(100, 4)));
  EXPECT_TRUE(core.AddOp(Op(50, 5)));
  core.Heartbeat(6, 80);
  EXPECT_EQ(core.partition_time(4), 100u);
  EXPECT_EQ(core.StableTime(), 50u);
  std::vector<OpRecord> out;
  EXPECT_EQ(core.ProcessStable(&out), 1u);
  EXPECT_EQ(out[0].partition, 5u);
  EXPECT_EQ(out[0].ts, 50u);
}

// --- property tests ----------------------------------------------------------

struct Emission {
  Timestamp ts;
  PartitionId partition;
};

// Property 3 + 4 (DESIGN.md): whatever the interleaving of ops, heartbeats
// and ProcessStable calls, (a) the emitted sequence is sorted by
// (ts, partition), (b) nothing is emitted that a partition could still
// undercut, (c) nothing is lost and nothing duplicated.
TEST(EunomiaCorePropertyTest, RandomStreamsStabilizeSafelyAndCompletely) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t partitions = 2 + static_cast<std::uint32_t>(rng.NextBounded(6));
    EunomiaCore core(partitions);
    std::vector<HybridClock> hybrids(partitions);
    std::vector<PhysicalClock> phys;
    for (std::uint32_t p = 0; p < partitions; ++p) {
      phys.emplace_back(rng.NextInRange(-2000, 2000),
                        static_cast<double>(rng.NextInRange(-100, 100)));
    }
    std::uint64_t true_time = 0;
    std::vector<Emission> emitted;
    std::vector<OpRecord> out;
    std::uint64_t ops_fed = 0;

    for (int step = 0; step < 3000; ++step) {
      true_time += rng.NextBounded(50) + 1;
      const auto p = static_cast<PartitionId>(rng.NextBounded(partitions));
      const int action = static_cast<int>(rng.NextBounded(10));
      if (action < 7) {
        const Timestamp ts =
            hybrids[p].TimestampUpdate(phys[p].Read(true_time), 0);
        ASSERT_TRUE(core.AddOp(Op(ts, p, 0, ops_fed)));
        ++ops_fed;
      } else if (action < 9) {
        const Timestamp now_phys = phys[p].Read(true_time);
        if (hybrids[p].HeartbeatDue(now_phys, 10)) {
          hybrids[p].Observe(now_phys);
          core.Heartbeat(p, now_phys);
        }
      } else {
        out.clear();
        core.ProcessStable(&out);
        for (const OpRecord& op : out) {
          emitted.push_back({op.ts, op.partition});
        }
        // Safety: every partition's next timestamp must exceed everything
        // emitted so far.
        if (!out.empty()) {
          const Timestamp frontier = out.back().ts;
          for (std::uint32_t q = 0; q < partitions; ++q) {
            ASSERT_GE(core.partition_time(q), frontier);
          }
        }
      }
    }
    // Drain: everyone heartbeats far into the future, then stabilize.
    true_time += 10'000'000;
    for (std::uint32_t p = 0; p < partitions; ++p) {
      const Timestamp now_phys =
          std::max(phys[p].Read(true_time), hybrids[p].max_ts() + 100);
      core.Heartbeat(p, now_phys);
    }
    out.clear();
    core.ProcessStable(&out);
    for (const OpRecord& op : out) {
      emitted.push_back({op.ts, op.partition});
    }

    // Completeness: every op fed was emitted exactly once.
    ASSERT_EQ(emitted.size(), ops_fed) << "trial " << trial;
    // Total order: sorted by (ts, partition).
    for (std::size_t i = 1; i < emitted.size(); ++i) {
      const bool ordered =
          emitted[i - 1].ts < emitted[i].ts ||
          (emitted[i - 1].ts == emitted[i].ts &&
           emitted[i - 1].partition < emitted[i].partition);
      ASSERT_TRUE(ordered) << "emission order violated at " << i;
    }
  }
}

// Stability safety under adversarial heartbeat timing: an op added *after*
// its partition's heartbeat must always carry a larger timestamp, so it can
// never be "missed" by a stabilization round.
TEST(EunomiaCorePropertyTest, HeartbeatNeverAllowsUndercut) {
  Rng rng(55);
  EunomiaCore core(3);
  std::vector<HybridClock> hybrids(3);
  std::uint64_t clock = 1000;
  for (int i = 0; i < 2000; ++i) {
    clock += rng.NextBounded(20);
    const auto p = static_cast<PartitionId>(rng.NextBounded(3));
    if (rng.NextBool(0.3)) {
      if (hybrids[p].HeartbeatDue(clock, 5)) {
        hybrids[p].Observe(clock);
        core.Heartbeat(p, clock);
      }
    } else {
      const Timestamp ts = hybrids[p].TimestampUpdate(clock, 0);
      ASSERT_TRUE(core.AddOp(OpRecord{ts, p, 0, 0}))
          << "op undercut its partition's own heartbeat";
    }
  }
  EXPECT_EQ(core.monotonicity_violations(), 0u);
}

}  // namespace
}  // namespace eunomia
