// End-to-end integration tests: every simulated geo-replicated system is
// driven with real workloads over the paper's 3-DC topology, and the key
// protocol invariants (DESIGN.md §5) are checked — causal visibility
// ordering, convergence, eventual visibility, session guarantees.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "src/georep/eunomiakv.h"
#include "src/harness/geo_experiment.h"
#include "src/sequencer/seq_system.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

using harness::MakeSystem;
using harness::SystemKind;

geo::GeoConfig SmallConfig() {
  geo::GeoConfig config;
  config.num_dcs = 3;
  config.partitions_per_dc = 4;
  config.servers_per_dc = 2;
  return config;
}

wl::WorkloadConfig SmallWorkload() {
  wl::WorkloadConfig workload;
  workload.num_keys = 200;
  workload.update_fraction = 0.3;
  workload.clients_per_dc = 4;
  workload.duration_us = 4 * sim::kSecond;
  workload.warmup_us = 500 * sim::kMillisecond;
  workload.cooldown_us = 500 * sim::kMillisecond;
  return workload;
}

class GeoSystemSmokeTest : public ::testing::TestWithParam<SystemKind> {};

// Every system completes operations and makes every installed update visible
// at every remote datacenter once load stops (liveness / eventual
// visibility).
TEST_P(GeoSystemSmokeTest, OpsCompleteAndUpdatesBecomeVisible) {
  const SystemKind kind = GetParam();
  auto sut = MakeSystem(kind, SmallConfig(), /*seed=*/7);
  sut.system->tracker().EnableDetailedLog();
  wl::WorkloadDriver driver(sut.sim.get(), sut.system.get(), SmallWorkload(), 3);
  driver.Start();
  sut.sim->RunUntil(SmallWorkload().duration_us);
  driver.Stop();
  // Generous drain so replication and stabilization finish everywhere.
  sut.sim->RunUntil(SmallWorkload().duration_us + 5 * sim::kSecond);

  const auto& tracker = sut.system->tracker();
  EXPECT_GT(tracker.reads_completed(), 100u) << harness::SystemName(kind);
  EXPECT_GT(tracker.updates_completed(), 20u);
  // Every update visible at both remote DCs: visibility CDF sample counts
  // add up to updates * (num_dcs - 1).
  std::uint64_t visible = 0;
  for (DatacenterId o = 0; o < 3; ++o) {
    for (DatacenterId d = 0; d < 3; ++d) {
      if (const Cdf* cdf = tracker.Visibility(o, d); cdf != nullptr) {
        visible += cdf->count();
      }
    }
  }
  EXPECT_EQ(visible, tracker.updates_completed() * 2u)
      << harness::SystemName(kind) << ": some updates never became visible";
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, GeoSystemSmokeTest,
    ::testing::Values(SystemKind::kEventual, SystemKind::kEunomiaKv,
                      SystemKind::kGentleRain, SystemKind::kCure,
                      SystemKind::kSSeq, SystemKind::kASeq),
    [](const ::testing::TestParamInfo<SystemKind>& param_info) {
      std::string name = harness::SystemName(param_info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// Convergence: after quiescence all EunomiaKV datacenters hold identical
// key -> (value, vts) maps.
TEST(EunomiaKvIntegrationTest, DatacentersConverge) {
  const auto config = SmallConfig();
  sim::Simulator sim(3);
  geo::EunomiaKvSystem system(&sim, config);
  auto workload = SmallWorkload();
  workload.update_fraction = 0.5;
  wl::WorkloadDriver driver(&sim, &system, workload, config.num_dcs);
  driver.Start();
  sim.RunUntil(workload.duration_us);
  driver.Stop();
  sim.RunUntil(workload.duration_us + 5 * sim::kSecond);

  // Collect each DC's full contents (union over partitions).
  auto snapshot = [&](DatacenterId dc) {
    std::map<Key, std::pair<Value, std::vector<Timestamp>>> contents;
    for (PartitionId p = 0; p < config.partitions_per_dc; ++p) {
      system.StoreAt(dc, p).ForEach([&](Key key, const geo::GeoVersion& v) {
        contents[key] = {v.value, v.vts.entries()};
      });
    }
    return contents;
  };
  const auto dc0 = snapshot(0);
  EXPECT_GT(dc0.size(), 10u);
  for (DatacenterId d = 1; d < 3; ++d) {
    const auto other = snapshot(d);
    EXPECT_EQ(dc0.size(), other.size()) << "dc" << d;
    EXPECT_TRUE(dc0 == other) << "dc" << d << " diverged from dc0";
  }
  // No receiver left anything stuck.
  for (DatacenterId d = 0; d < 3; ++d) {
    EXPECT_EQ(system.ReceiverAt(d).PendingCount(), 0u);
  }
}

// Causal visibility ordering — same session: a client's consecutive updates
// must become visible at every remote datacenter in issue order (this is
// the heart of causal consistency; eventual consistency does NOT give it).
//
// `tolerance_us`: EunomiaKV and S-Seq deliver in causal order through the
// receiver, so the ordering is exact. GentleRain and Cure enforce causality
// on the *read path* (reads gate on GST/GSS), not on per-partition
// visibility instants — GST broadcasts reach sibling partitions a few
// milliseconds apart, so visibility times may invert by up to roughly one
// stabilization round; we allow that bounded skew.
void CheckSameSessionOrder(SystemKind kind, std::uint64_t tolerance_us) {
  auto sut = MakeSystem(kind, SmallConfig(), /*seed=*/11);
  auto& tracker = sut.system->tracker();
  tracker.EnableDetailedLog();

  // One client at dc0 issues a causal chain of updates to different keys
  // (different partitions), back to back.
  std::vector<std::uint64_t> done_times;
  int completed = 0;
  std::function<void(int)> issue = [&](int i) {
    if (i >= 20) {
      return;
    }
    sut.system->ClientUpdate(1, 0, static_cast<Key>(i), "v",
                             [&, i] {
                               ++completed;
                               issue(i + 1);
                             });
  };
  issue(0);
  sut.sim->RunUntil(10 * sim::kSecond);
  ASSERT_EQ(completed, 20);

  // uids are assigned in installation order 0..19 (single client, chain).
  for (DatacenterId d = 1; d < 3; ++d) {
    std::optional<std::uint64_t> prev;
    for (std::uint64_t uid = 0; uid < 20; ++uid) {
      const auto t = tracker.VisibleAt(uid, d);
      ASSERT_TRUE(t.has_value()) << "uid " << uid << " never visible at dc" << d;
      if (prev.has_value()) {
        EXPECT_GE(*t + tolerance_us, *prev)
            << harness::SystemName(kind)
            << ": causal chain visible out of order at dc" << d << ", uid " << uid;
      }
      prev = t;
    }
  }
}

TEST(CausalOrderTest, EunomiaKvPreservesSessionOrder) {
  CheckSameSessionOrder(SystemKind::kEunomiaKv, 0);
}
TEST(CausalOrderTest, SSeqPreservesSessionOrder) {
  CheckSameSessionOrder(SystemKind::kSSeq, 0);
}
TEST(CausalOrderTest, GentleRainPreservesSessionOrder) {
  CheckSameSessionOrder(SystemKind::kGentleRain, 25 * sim::kMillisecond);
}
TEST(CausalOrderTest, CurePreservesSessionOrder) {
  CheckSameSessionOrder(SystemKind::kCure, 25 * sim::kMillisecond);
}

// Cross-session causality: c1@dc0 writes k1; c2@dc1 reads k1 (acquiring the
// dependency) and then writes k2. At dc2, k1 must be visible before k2.
TEST(CausalOrderTest, EunomiaKvCrossSessionDependency) {
  const auto config = SmallConfig();
  sim::Simulator sim(13);
  geo::EunomiaKvSystem system(&sim, config);
  system.tracker().EnableDetailedLog();

  bool w1_done = false;
  system.ClientUpdate(1, 0, /*key=*/100, "x", [&] { w1_done = true; });
  sim.RunUntil(2 * sim::kSecond);  // replicate k1 everywhere
  ASSERT_TRUE(w1_done);

  bool chain_done = false;
  system.ClientRead(2, 1, 100, [&] {
    system.ClientUpdate(2, 1, /*key=*/200, "y", [&] { chain_done = true; });
  });
  sim.RunUntil(6 * sim::kSecond);
  ASSERT_TRUE(chain_done);

  // The read of k1 at dc1 must have pulled dc0's entry into c2's session.
  const geo::VectorTimestamp* session = system.SessionOf(2);
  ASSERT_NE(session, nullptr);
  EXPECT_GT((*session)[0], 0u) << "read did not capture the k1 dependency";

  // uid 0 = k1 (from dc0), uid 1 = k2 (from dc1). Both visible at dc2, in
  // causal order.
  const auto t_k1 = system.tracker().VisibleAt(0, 2);
  const auto t_k2 = system.tracker().VisibleAt(1, 2);
  ASSERT_TRUE(t_k1.has_value());
  ASSERT_TRUE(t_k2.has_value());
  EXPECT_LE(*t_k1, *t_k2) << "k2 visible at dc2 before its dependency k1";
}

// The straggler hook must not break liveness: a partition that contacts
// Eunomia every 100 ms still stabilizes everything after healing.
TEST(EunomiaKvIntegrationTest, StragglerDelaysButDoesNotBlock) {
  const auto config = SmallConfig();
  sim::Simulator sim(17);
  geo::EunomiaKvSystem system(&sim, config);
  system.tracker().EnableDetailedLog();
  system.SetPartitionCommInterval(0, 0, 100 * sim::kMillisecond);

  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    system.ClientUpdate(static_cast<ClientId>(i + 1), 0,
                        static_cast<Key>(i * 17), "v", [&] { ++completed; });
  }
  sim.RunUntil(8 * sim::kSecond);
  EXPECT_EQ(completed, 40);
  std::uint64_t visible = 0;
  for (std::uint64_t uid = 0; uid < 40; ++uid) {
    for (DatacenterId d = 1; d < 3; ++d) {
      visible += system.tracker().VisibleAt(uid, d).has_value() ? 1 : 0;
    }
  }
  EXPECT_EQ(visible, 80u) << "straggler blocked stabilization";
}

// Eunomia-internal sanity after a run: no Property 2 violations ever reach
// the core, and the ordering service drained.
TEST(EunomiaKvIntegrationTest, CoreSeesCleanStreams) {
  const auto config = SmallConfig();
  sim::Simulator sim(23);
  geo::EunomiaKvSystem system(&sim, config);
  auto workload = SmallWorkload();
  wl::WorkloadDriver driver(&sim, &system, workload, config.num_dcs);
  driver.Start();
  sim.RunUntil(workload.duration_us);
  driver.Stop();
  sim.RunUntil(workload.duration_us + 5 * sim::kSecond);
  for (DatacenterId d = 0; d < 3; ++d) {
    EXPECT_EQ(system.EunomiaAt(d).monotonicity_violations(), 0u);
    EXPECT_EQ(system.EunomiaAt(d).pending_ops(), 0u) << "dc" << d;
  }
}

// A-Seq must track Eventual's latency profile (the sequencer is off the
// critical path), while S-Seq's update latency includes the sequencer RTT.
// The effect is a *latency* difference, so it shows in the client-limited
// regime (closed loop below server saturation), exactly as in the paper's
// Fig. 1 motivation experiment where "sequencers are not overloaded".
TEST(SeqSystemTest, ASeqFasterThanSSeqOnUpdates) {
  const auto config = SmallConfig();
  auto workload = SmallWorkload();
  workload.update_fraction = 1.0;  // updates only, isolate the effect
  workload.clients_per_dc = 2;     // stay below server saturation
  const auto sseq = harness::RunGeoExperiment(SystemKind::kSSeq, config, workload);
  const auto aseq = harness::RunGeoExperiment(SystemKind::kASeq, config, workload);
  EXPECT_GT(aseq.throughput_ops_s, sseq.throughput_ops_s * 1.05)
      << "removing the sequencer from the critical path must help";
}

}  // namespace
}  // namespace eunomia
