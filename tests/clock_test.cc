// Tests for the clock substrate: physical clock model, the paper's hybrid
// MaxTs logic (Algorithm 2), and the reference HLC.
#include <gtest/gtest.h>

#include <vector>

#include "src/clock/hlc.h"
#include "src/clock/hybrid_clock.h"
#include "src/clock/physical_clock.h"
#include "src/common/random.h"

namespace eunomia {
namespace {

TEST(PhysicalClockTest, PerfectClockTracksTrueTime) {
  PhysicalClock clock(0, 0.0);
  EXPECT_EQ(clock.Read(0), 0u);
  EXPECT_EQ(clock.Read(1'000'000), 1'000'000u);
}

TEST(PhysicalClockTest, OffsetApplies) {
  PhysicalClock fast(500, 0.0);
  PhysicalClock slow(-500, 0.0);
  EXPECT_EQ(fast.Read(1000), 1500u);
  EXPECT_EQ(slow.Read(1000), 500u);
}

TEST(PhysicalClockTest, NegativeReadingsClampToZero) {
  PhysicalClock slow(-1000, 0.0);
  EXPECT_EQ(slow.Read(10), 0u);
}

TEST(PhysicalClockTest, DriftAccumulates) {
  PhysicalClock fast(0, 100.0);  // +100 ppm
  // After 10 simulated seconds the clock should be ~1 ms ahead.
  EXPECT_NEAR(static_cast<double>(fast.Read(10'000'000)), 10'001'000.0, 2.0);
}

TEST(PhysicalClockTest, DisciplineResetsError) {
  PhysicalClock clock(700, 50.0);
  clock.Discipline(5'000'000);
  EXPECT_NEAR(static_cast<double>(clock.Read(5'000'000)), 5'000'000.0, 1.0);
}

TEST(PhysicalClockTest, MonotoneInTrueTime) {
  PhysicalClock clock(-200, -80.0);
  Timestamp prev = 0;
  for (std::uint64_t t = 0; t < 1'000'000; t += 997) {
    const Timestamp now = clock.Read(t);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(HybridClockTest, StrictlyGreaterThanClientClock) {
  HybridClock hc;
  EXPECT_GT(hc.TimestampUpdate(/*physical_now=*/100, /*client_clock=*/500), 500u);
}

TEST(HybridClockTest, UsesPhysicalTimeWhenAhead) {
  HybridClock hc;
  EXPECT_EQ(hc.TimestampUpdate(1000, 0), 1000u);
}

TEST(HybridClockTest, StrictMonotonicityUnderRepeatedCalls) {
  HybridClock hc;
  Timestamp prev = 0;
  for (int i = 0; i < 1000; ++i) {
    // Physical clock frozen: the logical part must still move forward.
    const Timestamp ts = hc.TimestampUpdate(123, 0);
    EXPECT_GT(ts, prev);
    prev = ts;
  }
}

// The §3.2 scenario: a client arrives with a clock far ahead of the
// partition's physical time (clock skew). The hybrid clock must NOT wait —
// it advances the logical part instead — yet remain monotonic.
TEST(HybridClockTest, NoBlockingUnderClockSkew) {
  HybridClock hc;
  const Timestamp skewed_client = 1'000'000;
  const Timestamp t1 = hc.TimestampUpdate(/*physical_now=*/100, skewed_client);
  EXPECT_EQ(t1, skewed_client + 1);
  // Next local update with a lagging physical clock continues past it.
  const Timestamp t2 = hc.TimestampUpdate(/*physical_now=*/101, 0);
  EXPECT_EQ(t2, t1 + 1);
}

TEST(HybridClockTest, HeartbeatGate) {
  HybridClock hc;
  hc.TimestampUpdate(1000, 0);  // MaxTs = 1000
  const Timestamp delta = 50;
  EXPECT_FALSE(hc.HeartbeatDue(1049, delta));
  EXPECT_TRUE(hc.HeartbeatDue(1050, delta));
  // After observing the heartbeat value, later updates must exceed it.
  hc.Observe(1050);
  EXPECT_GT(hc.TimestampUpdate(1050, 0), 1050u);
}

TEST(HybridClockTest, ObserveNeverMovesBackwards) {
  HybridClock hc;
  hc.TimestampUpdate(500, 0);
  hc.Observe(100);
  EXPECT_EQ(hc.max_ts(), 500u);
}

// Property: interleaved update streams through hybrid clocks produce
// timestamps consistent with the client-observed order (Property 1) and
// strictly monotone per partition (Property 2), under arbitrary skew.
TEST(HybridClockTest, PropertyCausalityAndMonotonicityUnderSkew) {
  Rng rng(77);
  constexpr int kPartitions = 4;
  std::vector<HybridClock> clocks(kPartitions);
  std::vector<PhysicalClock> phys;
  phys.reserve(kPartitions);
  for (int p = 0; p < kPartitions; ++p) {
    phys.emplace_back(rng.NextInRange(-100000, 100000),
                      static_cast<double>(rng.NextInRange(-200, 200)));
  }
  std::vector<Timestamp> last_per_partition(kPartitions, 0);
  Timestamp client_clock = 0;  // one client hopping across partitions
  std::uint64_t true_time = 0;
  for (int i = 0; i < 5000; ++i) {
    true_time += rng.NextBounded(100);
    const int p = static_cast<int>(rng.NextBounded(kPartitions));
    const Timestamp ts =
        clocks[p].TimestampUpdate(phys[p].Read(true_time), client_clock);
    EXPECT_GT(ts, client_clock) << "Property 1 violated";
    EXPECT_GT(ts, last_per_partition[p]) << "Property 2 violated";
    last_per_partition[p] = ts;
    client_clock = ts;  // Alg. 1 line 9
  }
}

TEST(HlcTest, TickAdvancesLogicalWhenPhysicalStalls) {
  Hlc hlc;
  const HlcTimestamp a = hlc.Tick(100);
  const HlcTimestamp b = hlc.Tick(100);
  EXPECT_LT(a, b);
  EXPECT_EQ(b.l, 100u);
  EXPECT_EQ(b.c, a.c + 1);
}

TEST(HlcTest, TickResetsLogicalWhenPhysicalAdvances) {
  Hlc hlc;
  hlc.Tick(100);
  hlc.Tick(100);
  const HlcTimestamp t = hlc.Tick(200);
  EXPECT_EQ(t.l, 200u);
  EXPECT_EQ(t.c, 0u);
}

TEST(HlcTest, MergeDominatesRemote) {
  Hlc a;
  Hlc b;
  const HlcTimestamp sent = a.Tick(1000);
  const HlcTimestamp received = b.Merge(10, sent);  // b's clock far behind
  EXPECT_LT(sent, received);
}

TEST(HlcTest, BoundedDivergenceWithSynchronizedClocks) {
  // With perfectly synchronized physical clocks, l never exceeds the
  // largest physical time seen — HLC's key bound.
  Hlc a;
  Hlc b;
  HlcTimestamp last{};
  for (std::uint64_t t = 0; t < 1000; t += 10) {
    last = a.Tick(t);
    last = b.Merge(t, last);
    EXPECT_LE(last.l, t);
  }
}

}  // namespace
}  // namespace eunomia
