// Protocol tests for the global-stabilization baselines (GentleRain / Cure):
// GST/GSS monotonicity, visibility gating, skew-wait behaviour, and
// convergence of their multi-version stores.
#include <gtest/gtest.h>

#include <vector>

#include "src/cure/cure.h"
#include "src/gentlerain/gentlerain.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

geo::GeoConfig SmallConfig() {
  geo::GeoConfig config;
  config.num_dcs = 3;
  config.partitions_per_dc = 4;
  config.servers_per_dc = 2;
  return config;
}

wl::WorkloadConfig SmallWorkload() {
  wl::WorkloadConfig workload;
  workload.num_keys = 100;
  workload.update_fraction = 0.4;
  workload.clients_per_dc = 4;
  workload.duration_us = 3 * sim::kSecond;
  return workload;
}

TEST(GentleRainTest, GstAdvancesAndIsMonotone) {
  const auto config = SmallConfig();
  sim::Simulator sim(5);
  geo::GentleRainSystem system(&sim, config);
  wl::WorkloadDriver driver(&sim, &system, SmallWorkload(), config.num_dcs);
  driver.Start();

  Timestamp prev = 0;
  for (int step = 1; step <= 20; ++step) {
    sim.RunUntil(static_cast<std::uint64_t>(step) * 100 * sim::kMillisecond);
    const Timestamp gst = system.GstAt(0, 0);
    EXPECT_GE(gst, prev) << "GST regressed";
    prev = gst;
  }
  // After 2 simulated seconds the GST must have moved well past zero — the
  // heartbeat + aggregation pipeline works.
  EXPECT_GT(prev, 1 * sim::kSecond / 2);
}

TEST(GentleRainTest, GstNeverPassesAnUnheardTimestamp) {
  // The GST at any partition must never exceed the minimum timestamp the
  // datacenter has heard from every remote sibling — otherwise an update
  // could become visible before all its potential causal context arrived.
  // We exercise it indirectly: the GST must lag (simulated) real time by at
  // least the one-way latency to the farthest datacenter.
  const auto config = SmallConfig();
  sim::Simulator sim(6);
  geo::GentleRainSystem system(&sim, config);
  wl::WorkloadDriver driver(&sim, &system, SmallWorkload(), config.num_dcs);
  driver.Start();
  sim.RunUntil(2 * sim::kSecond);
  // dc1's farthest sibling is dc2 at 80 ms one-way.
  const Timestamp gst = system.GstAt(1, 0);
  EXPECT_LT(gst, sim.now() - 75 * sim::kMillisecond);
}

TEST(CureTest, GssAdvancesPerEntryAndIsMonotone) {
  const auto config = SmallConfig();
  sim::Simulator sim(7);
  geo::CureSystem system(&sim, config);
  wl::WorkloadDriver driver(&sim, &system, SmallWorkload(), config.num_dcs);
  driver.Start();

  geo::VectorTimestamp prev(config.num_dcs);
  for (int step = 1; step <= 20; ++step) {
    sim.RunUntil(static_cast<std::uint64_t>(step) * 100 * sim::kMillisecond);
    const geo::VectorTimestamp& gss = system.GssAt(0, 0);
    EXPECT_TRUE(gss.Dominates(prev)) << "GSS entry regressed";
    prev = gss;
  }
  // Remote entries advanced.
  EXPECT_GT(prev[1], 0u);
  EXPECT_GT(prev[2], 0u);
}

TEST(CureTest, NearerDcEntryLeadsFartherOne) {
  // Cure's per-entry tracking is the whole point: dc1 hears from dc0 (40 ms)
  // sooner than from dc2 (80 ms), so GSS[dc0] should lead GSS[dc2].
  const auto config = SmallConfig();
  sim::Simulator sim(8);
  geo::CureSystem system(&sim, config);
  wl::WorkloadDriver driver(&sim, &system, SmallWorkload(), config.num_dcs);
  driver.Start();
  sim.RunUntil(3 * sim::kSecond);
  const geo::VectorTimestamp& gss = system.GssAt(1, 0);
  EXPECT_GT(gss[0], gss[2])
      << "the 40 ms neighbour's entry should lead the 80 ms one";
}

// The clock-skew wait: GentleRain updates must carry timestamps strictly
// greater than the client's dependency, provided only by the physical clock.
// With a client that just read a far-ahead timestamp, the update completes
// *later* than an unconstrained one — the artificial delay Eunomia's hybrid
// clocks avoid.
TEST(GentleRainTest, SkewedDependencyDelaysUpdate) {
  const auto config = SmallConfig();

  auto measure = [&](bool prime_with_future_read) -> std::uint64_t {
    sim::Simulator sim(9);
    geo::GentleRainSystem system(&sim, config);
    // Prime: write a value whose timestamp lands well ahead of partition
    // clocks by chaining many updates through one client (each bumps
    // MaxTs+1; with microsecond clocks this stays close to real time), so
    // instead inject skew via a long chain is impractical — use the
    // system's own mechanics: issue an update, read it, then update again
    // immediately; the second update's wait is the measured quantity.
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    if (prime_with_future_read) {
      system.ClientUpdate(1, 0, 1, "a", [&] {
        system.ClientRead(2, 0, 1, [&] {
          start = sim.now();
          system.ClientUpdate(2, 0, 2, "b", [&] { end = sim.now(); });
        });
      });
    } else {
      system.ClientUpdate(1, 0, 1, "a", [&] {
        start = sim.now();
        system.ClientUpdate(3, 0, 2, "b", [&] { end = sim.now(); });
      });
    }
    sim.RunUntil(2 * sim::kSecond);
    return end - start;
  };
  // Both complete; the dependent one may wait (clock offsets up to 500 us),
  // but never blocks unboundedly.
  const std::uint64_t dependent = measure(true);
  const std::uint64_t independent = measure(false);
  EXPECT_GT(dependent, 0u);
  EXPECT_GT(independent, 0u);
  EXPECT_LT(dependent, 50 * sim::kMillisecond);
}

TEST(CureTest, RemoteUpdatesEventuallyVisibleEverywhere) {
  const auto config = SmallConfig();
  sim::Simulator sim(10);
  geo::CureSystem system(&sim, config);
  system.tracker().EnableDetailedLog();
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    system.ClientUpdate(static_cast<ClientId>(i + 1), 0,
                        static_cast<Key>(i * 13), "v", [&] { ++completed; });
  }
  sim.RunUntil(5 * sim::kSecond);
  EXPECT_EQ(completed, 10);
  for (std::uint64_t uid = 0; uid < 10; ++uid) {
    for (DatacenterId d = 1; d < 3; ++d) {
      EXPECT_TRUE(system.tracker().VisibleAt(uid, d).has_value())
          << "uid " << uid << " at dc" << d;
    }
  }
}

TEST(GentleRainTest, VisibilityRespectsFarthestDcFloor) {
  // GentleRain's structural property: an update cannot become visible at a
  // remote DC until the farthest DC's timestamps passed it. For dc0 -> dc1
  // (40 ms leg) with dc2 at 80 ms from dc1, the added delay is >= ~35 ms.
  const auto config = SmallConfig();
  sim::Simulator sim(11);
  geo::GentleRainSystem system(&sim, config);
  system.tracker().EnableDetailedLog();
  wl::WorkloadDriver driver(&sim, &system, SmallWorkload(), config.num_dcs);
  driver.Start();
  sim.RunUntil(6 * sim::kSecond);
  driver.Stop();
  sim.RunUntil(9 * sim::kSecond);
  const Cdf* vis = system.tracker().Visibility(0, 1);
  ASSERT_NE(vis, nullptr);
  ASSERT_GT(vis->count(), 50u);
  EXPECT_GT(vis->Quantile(0.05), 30'000.0)
      << "GentleRain's scalar should impose a ~40 ms floor on the 40 ms leg";
}

TEST(CureTest, VisibilityBeatsGentleRainOnNearLeg) {
  const auto config = SmallConfig();
  auto run = [&](auto make_system) {
    sim::Simulator sim(12);
    auto system = make_system(&sim);
    wl::WorkloadDriver driver(&sim, system.get(), SmallWorkload(), config.num_dcs);
    driver.Start();
    sim.RunUntil(6 * sim::kSecond);
    driver.Stop();
    sim.RunUntil(9 * sim::kSecond);
    const Cdf* vis = system->tracker().Visibility(0, 1);
    return vis != nullptr && vis->count() > 0 ? vis->Quantile(0.90) : -1.0;
  };
  const double gentlerain = run([&](sim::Simulator* s) {
    return std::make_unique<geo::GentleRainSystem>(s, config);
  });
  const double cure = run([&](sim::Simulator* s) {
    return std::make_unique<geo::CureSystem>(s, config);
  });
  ASSERT_GT(gentlerain, 0.0);
  ASSERT_GT(cure, 0.0);
  EXPECT_LT(cure, gentlerain)
      << "vector tracking must beat the scalar on the near leg (Fig. 6 left)";
}

}  // namespace
}  // namespace eunomia
