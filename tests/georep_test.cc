// Unit tests for the geo-replication building blocks: vector timestamps,
// the Algorithm 5 receiver, the vector-LWW store, and the visibility
// tracker.
#include <gtest/gtest.h>

#include <vector>

#include "src/georep/geo_store.h"
#include "src/georep/receiver.h"
#include "src/georep/vclock.h"
#include "src/georep/visibility.h"

namespace eunomia::geo {
namespace {

TEST(VectorTimestampTest, MergeMaxIsEntrywise) {
  VectorTimestamp a{1, 5, 3};
  const VectorTimestamp b{2, 4, 9};
  a.MergeMax(b);
  EXPECT_EQ(a, (VectorTimestamp{2, 5, 9}));
}

TEST(VectorTimestampTest, DominationAndConcurrency) {
  const VectorTimestamp a{1, 2, 3};
  const VectorTimestamp b{2, 2, 3};
  const VectorTimestamp c{0, 5, 0};
  EXPECT_TRUE(b.Dominates(a));
  EXPECT_FALSE(a.Dominates(b));
  EXPECT_TRUE(a.StrictlyBefore(b));
  EXPECT_FALSE(b.StrictlyBefore(a));
  EXPECT_TRUE(a.Concurrent(c));
  EXPECT_TRUE(c.Concurrent(b));
  EXPECT_TRUE(a.Dominates(a));
  EXPECT_FALSE(a.StrictlyBefore(a));
}

TEST(VectorTimestampTest, SumAndToString) {
  const VectorTimestamp v{10, 20, 30};
  EXPECT_EQ(v.Sum(), 60u);
  EXPECT_EQ(v.ToString(), "[10,20,30]");
}

TEST(GeoStoreTest, CausallyNewerWins) {
  GeoStore store;
  store.Put(1, "old", VectorTimestamp{1, 0, 0}, 0);
  EXPECT_TRUE(store.Put(1, "new", VectorTimestamp{2, 1, 0}, 1));
  EXPECT_EQ(store.Get(1)->value, "new");
  EXPECT_FALSE(store.Put(1, "stale", VectorTimestamp{1, 0, 0}, 0));
}

TEST(GeoStoreTest, ConcurrentWritesArbitrateDeterministically) {
  const VectorTimestamp va{5, 0, 0};
  const VectorTimestamp vb{0, 4, 0};
  GeoStore ab;
  ab.Put(1, "a", va, 0);
  ab.Put(1, "b", vb, 1);
  GeoStore ba;
  ba.Put(1, "b", vb, 1);
  ba.Put(1, "a", va, 0);
  ASSERT_NE(ab.Get(1), nullptr);
  ASSERT_NE(ba.Get(1), nullptr);
  EXPECT_EQ(ab.Get(1)->value, ba.Get(1)->value) << "order dependence";
}

RemoteUpdate MakeUpdate(std::uint64_t uid, DatacenterId origin,
                        VectorTimestamp vts, PartitionId p = 0) {
  return RemoteUpdate{uid, /*key=*/uid, std::move(vts), origin, p};
}

struct SyncApplier {
  std::vector<std::uint64_t> applied;
  Receiver::ApplyFn fn() {
    return [this](const RemoteUpdate& u, std::function<void()> done) {
      applied.push_back(u.uid);
      done();
    };
  }
};

TEST(ReceiverTest, FifoPerOrigin) {
  SyncApplier applier;
  Receiver receiver(/*self=*/0, /*num_dcs=*/3, applier.fn());
  receiver.OnRemoteUpdate(MakeUpdate(1, 1, VectorTimestamp{0, 1, 0}));
  receiver.OnRemoteUpdate(MakeUpdate(2, 1, VectorTimestamp{0, 2, 0}));
  EXPECT_EQ(applier.applied, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(receiver.site_time()[1], 2u);
}

TEST(ReceiverTest, CrossDcDependencyBlocksUntilSatisfied) {
  SyncApplier applier;
  Receiver receiver(0, 3, applier.fn());
  // Update from dc1 depending on dc2's update 5 — must wait.
  receiver.OnRemoteUpdate(MakeUpdate(10, 1, VectorTimestamp{0, 1, 5}));
  EXPECT_TRUE(applier.applied.empty());
  EXPECT_EQ(receiver.PendingCount(), 1u);
  // dc2's update 5 arrives: both flush, dependency first.
  receiver.OnRemoteUpdate(MakeUpdate(11, 2, VectorTimestamp{0, 0, 5}));
  EXPECT_EQ(applier.applied, (std::vector<std::uint64_t>{11, 10}));
  EXPECT_EQ(receiver.PendingCount(), 0u);
}

TEST(ReceiverTest, DependencyOnSelfIsIgnored) {
  // An update from dc1 depending on dc0's own update (we are dc0): local
  // updates exist locally by construction — no gating.
  SyncApplier applier;
  Receiver receiver(0, 3, applier.fn());
  receiver.OnRemoteUpdate(MakeUpdate(1, 1, VectorTimestamp{999, 1, 0}));
  EXPECT_EQ(applier.applied.size(), 1u);
}

TEST(ReceiverTest, DuplicateSuppressionAfterFailoverReship) {
  SyncApplier applier;
  Receiver receiver(0, 2, applier.fn());
  receiver.OnRemoteUpdate(MakeUpdate(1, 1, VectorTimestamp{0, 1}));
  receiver.OnRemoteUpdate(MakeUpdate(2, 1, VectorTimestamp{0, 2}));
  // New leader re-ships a suffix including an already applied update.
  receiver.OnRemoteUpdate(MakeUpdate(2, 1, VectorTimestamp{0, 2}));
  receiver.OnRemoteUpdate(MakeUpdate(3, 1, VectorTimestamp{0, 3}));
  EXPECT_EQ(applier.applied, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(receiver.duplicate_count(), 1u);
}

TEST(ReceiverTest, AsyncApplyKeepsSingleInFlightPerOrigin) {
  // Applies complete asynchronously: the receiver must not dispatch the next
  // update from the same origin until the previous one acked.
  std::vector<std::pair<RemoteUpdate, std::function<void()>>> inflight;
  Receiver receiver(0, 2, [&](const RemoteUpdate& u, std::function<void()> done) {
    inflight.emplace_back(u, std::move(done));
  });
  receiver.OnRemoteUpdate(MakeUpdate(1, 1, VectorTimestamp{0, 1}));
  receiver.OnRemoteUpdate(MakeUpdate(2, 1, VectorTimestamp{0, 2}));
  ASSERT_EQ(inflight.size(), 1u);  // second waits for the first
  inflight[0].second();            // complete apply of uid 1
  ASSERT_EQ(inflight.size(), 2u);
  EXPECT_EQ(inflight[1].first.uid, 2u);
  inflight[1].second();
  EXPECT_EQ(receiver.site_time()[1], 2u);
}

TEST(ReceiverTest, InterleavedOriginsRespectCausalOrder) {
  // dc1 writes u1; dc2 reads it and writes u2 (depends on u1). Whatever the
  // arrival order, u1 must apply before u2.
  for (const bool u2_first : {false, true}) {
    SyncApplier applier;
    Receiver receiver(0, 3, applier.fn());
    const auto u1 = MakeUpdate(1, 1, VectorTimestamp{0, 7, 0});
    const auto u2 = MakeUpdate(2, 2, VectorTimestamp{0, 7, 4});
    if (u2_first) {
      receiver.OnRemoteUpdate(u2);
      receiver.OnRemoteUpdate(u1);
    } else {
      receiver.OnRemoteUpdate(u1);
      receiver.OnRemoteUpdate(u2);
    }
    ASSERT_EQ(applier.applied.size(), 2u) << "u2_first=" << u2_first;
    EXPECT_EQ(applier.applied[0], 1u);
    EXPECT_EQ(applier.applied[1], 2u);
  }
}

TEST(VisibilityTrackerTest, ArtificialDelayComputedFromArrival) {
  VisibilityTracker tracker;
  const std::uint64_t uid = tracker.OnInstalled(0, 1000);
  tracker.OnRemoteArrival(uid, 1, 41'000);
  tracker.OnRemoteVisible(uid, 1, 56'000);
  const Cdf* vis = tracker.Visibility(0, 1);
  ASSERT_NE(vis, nullptr);
  EXPECT_EQ(vis->count(), 1u);
  EXPECT_DOUBLE_EQ(vis->Quantile(0.5), 15'000.0);  // 56ms - 41ms
}

TEST(VisibilityTrackerTest, ThroughputWindowing) {
  VisibilityTracker tracker(1'000'000);
  for (std::uint64_t t = 0; t < 5'000'000; t += 1000) {
    tracker.OnOpComplete(0, false, t, 500);
  }
  // 1000 ops per 1-second window.
  EXPECT_NEAR(tracker.Throughput(1'000'000, 4'000'000), 1000.0, 1.0);
  EXPECT_EQ(tracker.ops_completed(), 5000u);
}

TEST(VisibilityTrackerTest, PerPairSeparation) {
  VisibilityTracker tracker;
  const auto u1 = tracker.OnInstalled(0, 0);
  const auto u2 = tracker.OnInstalled(1, 0);
  tracker.OnRemoteArrival(u1, 1, 10);
  tracker.OnRemoteVisible(u1, 1, 30);
  tracker.OnRemoteArrival(u2, 2, 10);
  tracker.OnRemoteVisible(u2, 2, 110);
  ASSERT_NE(tracker.Visibility(0, 1), nullptr);
  ASSERT_NE(tracker.Visibility(1, 2), nullptr);
  EXPECT_EQ(tracker.Visibility(0, 2), nullptr);
  EXPECT_DOUBLE_EQ(tracker.Visibility(0, 1)->Quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(tracker.Visibility(1, 2)->Quantile(1.0), 100.0);
}

TEST(VisibilityTrackerTest, HighDatacenterIdsDoNotAliasAcrossUids) {
  // Regression: the old key packing (uid * 64 + dc) aliased (uid, dc >= 64)
  // onto (uid + 1, dc - 64), corrupting per-update bookkeeping.
  VisibilityTracker tracker;
  tracker.EnableDetailedLog();
  const auto u0 = tracker.OnInstalled(0, 0);
  const auto u1 = tracker.OnInstalled(0, 0);
  tracker.OnRemoteArrival(u0, 64, 100);
  tracker.OnRemoteVisible(u0, 64, 130);
  // With the aliasing bug, u0's records landed on (u1, dc 0).
  EXPECT_EQ(tracker.VisibleAt(u0, 64), std::optional<std::uint64_t>(130));
  EXPECT_FALSE(tracker.VisibleAt(u1, 0).has_value());
  ASSERT_NE(tracker.Visibility(0, 64), nullptr);
  EXPECT_DOUBLE_EQ(tracker.Visibility(0, 64)->Quantile(1.0), 30.0);
  EXPECT_EQ(tracker.PendingArrivals(), 0u);
}

TEST(VisibilityTrackerTest, InstallRetentionDisabledForPerNodeTrackers) {
  // A real GeoNode's tracker never hears back about its own updates (remote
  // visibility lands on the destinations' trackers), so origin records must
  // not accumulate — while destination-side EnsureInstalled stubs still
  // work and reclaim after the node's single visibility report.
  VisibilityTracker tracker(1'000'000, /*num_datacenters=*/2);
  tracker.DisableInstallRetention();
  tracker.RecordInstalled(/*uid=*/7, /*origin=*/0, /*t_us=*/100);
  EXPECT_EQ(tracker.TrackedInstalls(), 0u);

  tracker.EnsureInstalled(/*uid=*/42, /*origin=*/1, /*t_us=*/200);
  EXPECT_EQ(tracker.TrackedInstalls(), 1u);
  tracker.OnRemoteArrival(42, 0, 250);
  tracker.OnRemoteVisible(42, 0, 300);
  EXPECT_EQ(tracker.TrackedInstalls(), 0u);
  ASSERT_NE(tracker.Visibility(1, 0), nullptr);
  EXPECT_DOUBLE_EQ(tracker.Visibility(1, 0)->Quantile(1.0), 50.0);
}

TEST(VisibilityTrackerTest, InstalledRecordsReclaimedOnceFullyVisible) {
  // Regression: installed_ grew one entry per update for the whole run.
  // With the datacenter count known, the origin record is dropped once all
  // num_dcs - 1 destinations reported visible.
  VisibilityTracker tracker(1'000'000, /*num_datacenters=*/3);
  const auto uid = tracker.OnInstalled(0, 0);
  EXPECT_EQ(tracker.TrackedInstalls(), 1u);
  tracker.OnRemoteArrival(uid, 1, 10);
  tracker.OnRemoteVisible(uid, 1, 25);
  EXPECT_EQ(tracker.TrackedInstalls(), 1u);  // datacenter 2 still pending
  tracker.OnRemoteArrival(uid, 2, 12);
  tracker.OnRemoteVisible(uid, 2, 40);
  EXPECT_EQ(tracker.TrackedInstalls(), 0u);
  // Both visibility samples were still recorded before reclamation.
  ASSERT_NE(tracker.Visibility(0, 1), nullptr);
  ASSERT_NE(tracker.Visibility(0, 2), nullptr);
  EXPECT_EQ(tracker.Visibility(0, 1)->count(), 1u);
  EXPECT_EQ(tracker.Visibility(0, 2)->count(), 1u);
}

}  // namespace
}  // namespace eunomia::geo
