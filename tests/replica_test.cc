// Tests for the fault-tolerant Eunomia pieces (§3.3 / Algorithm 4):
// partition-side ReplicatedSender (prefix property via resend-until-acked)
// and EunomiaReplica (batch dedup, leader stabilization, follower discard),
// including property tests under message loss, duplication and reordering.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "src/common/random.h"
#include "src/eunomia/replica.h"
#include "src/eunomia/sender.h"

namespace eunomia {
namespace {

OpRecord Op(Timestamp ts, PartitionId p = 0) { return OpRecord{ts, p, 0, ts}; }

TEST(PartitionBatcherTest, AccumulatesAndHandsOff) {
  PartitionBatcher batcher;
  EXPECT_TRUE(batcher.empty());
  batcher.Add(Op(1));
  batcher.Add(Op(2));
  EXPECT_EQ(batcher.size(), 2u);
  const auto batch = batcher.TakeBatch();
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batcher.empty());
}

TEST(ReplicatedSenderTest, BatchContainsEverythingUnacked) {
  ReplicatedSender sender(2);
  sender.Add(Op(10));
  sender.Add(Op(20));
  sender.Add(Op(30));
  EXPECT_EQ(sender.BatchFor(0).size(), 3u);
  sender.OnAck(0, 20);
  const auto batch = sender.BatchFor(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].ts, 30u);
  // Replica 1 never acked: still gets everything... but buffered ops are
  // only trimmed below min ack across replicas.
  EXPECT_EQ(sender.BatchFor(1).size(), 3u);
}

TEST(ReplicatedSenderTest, TrimsAtMinAck) {
  ReplicatedSender sender(2);
  sender.Add(Op(10));
  sender.Add(Op(20));
  sender.OnAck(0, 20);
  EXPECT_EQ(sender.unacked_size(), 2u);  // replica 1 still behind
  sender.OnAck(1, 10);
  EXPECT_EQ(sender.unacked_size(), 1u);
  sender.OnAck(1, 20);
  EXPECT_EQ(sender.unacked_size(), 0u);
}

TEST(ReplicatedSenderTest, OutOfOrderAcksOnlyMoveForward) {
  ReplicatedSender sender(1);
  sender.Add(Op(10));
  sender.Add(Op(20));
  sender.OnAck(0, 20);
  sender.OnAck(0, 10);  // late ack must not resurrect acked ops
  EXPECT_EQ(sender.ack_of(0), 20u);
  EXPECT_TRUE(sender.BatchFor(0).empty());
}

TEST(ReplicatedSenderTest, DropReplicaUnblocksTrimming) {
  ReplicatedSender sender(2);
  sender.Add(Op(10));
  sender.OnAck(0, 10);
  EXPECT_EQ(sender.unacked_size(), 1u);  // replica 1 holding things up
  sender.DropReplica(1);
  EXPECT_EQ(sender.unacked_size(), 0u);
}

TEST(EunomiaReplicaTest, NewBatchFiltersDuplicates) {
  EunomiaReplica replica(0, 1);
  const std::vector<OpRecord> batch1 = {Op(10), Op(20)};
  EXPECT_EQ(replica.NewBatch(batch1, 0), 20u);
  // Resend with overlap: only the new op lands.
  const std::vector<OpRecord> batch2 = {Op(10), Op(20), Op(30)};
  EXPECT_EQ(replica.NewBatch(batch2, 0), 30u);
  EXPECT_EQ(replica.core().ops_received(), 3u);
  EXPECT_EQ(replica.core().monotonicity_violations(), 0u);
}

TEST(EunomiaReplicaTest, LeaderEmitsFollowerDiscards) {
  EunomiaReplica leader(0, 1);
  EunomiaReplica follower(1, 1);
  const std::vector<OpRecord> batch = {Op(10), Op(20), Op(30)};
  leader.NewBatch(batch, 0);
  follower.NewBatch(batch, 0);

  std::vector<OpRecord> shipped;
  const auto result = leader.ProcessStable(&shipped);
  EXPECT_EQ(result.stable_time, 30u);
  EXPECT_EQ(shipped.size(), 3u);

  follower.OnStableNotice(result.stable_time);
  EXPECT_EQ(follower.core().pending_ops(), 0u);
}

TEST(EunomiaReplicaTest, FollowerTakeoverEmitsOnlySuffix) {
  EunomiaReplica leader(0, 1);
  EunomiaReplica follower(1, 1);
  std::vector<OpRecord> ops = {Op(10), Op(20), Op(30), Op(40)};
  leader.NewBatch(ops, 0);
  follower.NewBatch(ops, 0);

  std::vector<OpRecord> shipped;
  leader.ProcessStable(&shipped);                // leader ships all 4
  follower.OnStableNotice(20);                   // notice only covered 2
  // Leader crashes; follower becomes leader and stabilizes.
  std::vector<OpRecord> reshipped;
  follower.ProcessStable(&reshipped);
  ASSERT_EQ(reshipped.size(), 2u);               // suffix 30, 40 re-shipped
  EXPECT_EQ(reshipped[0].ts, 30u);
  EXPECT_EQ(reshipped[1].ts, 40u);
}

// --- end-to-end property: prefix property & identical emission under chaos --

struct LossyChannel {
  double drop;
  double dup;
  Rng* rng;
  bool Delivers() const { return !rng->NextBool(drop); }
  bool Duplicates() const { return rng->NextBool(dup); }
};

// Simulates partitions sending through lossy/duplicating channels to N
// replicas using ReplicatedSender; verifies that (a) every replica holding
// op u from p also holds every earlier op from p (prefix property), and
// (b) the leader's emission is gapless and ordered.
TEST(FtEunomiaPropertyTest, PrefixPropertyUnderLossAndDuplication) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    constexpr std::uint32_t kReplicas = 3;
    constexpr std::uint32_t kPartitions = 4;
    std::vector<EunomiaReplica> replicas;
    for (std::uint32_t r = 0; r < kReplicas; ++r) {
      replicas.emplace_back(r, kPartitions);
    }
    std::vector<ReplicatedSender> senders(kPartitions,
                                          ReplicatedSender(kReplicas));
    std::vector<Timestamp> next_ts(kPartitions, 1);
    LossyChannel channel{0.3, 0.2, &rng};

    std::vector<OpRecord> emitted;

    for (int round = 0; round < 300; ++round) {
      // Each partition creates 0-3 ops.
      for (std::uint32_t p = 0; p < kPartitions; ++p) {
        const std::uint64_t n = rng.NextBounded(4);
        for (std::uint64_t i = 0; i < n; ++i) {
          next_ts[p] += 1 + rng.NextBounded(5);
          senders[p].Add(OpRecord{next_ts[p], p, 0, next_ts[p]});
        }
      }
      // Flush: every partition sends its per-replica batch over the lossy
      // channel; acks flow back over a lossy channel too.
      for (std::uint32_t p = 0; p < kPartitions; ++p) {
        for (std::uint32_t r = 0; r < kReplicas; ++r) {
          auto batch = senders[p].BatchFor(r);
          if (batch.empty()) {
            continue;
          }
          const int copies = channel.Delivers() ? (channel.Duplicates() ? 2 : 1) : 0;
          for (int c = 0; c < copies; ++c) {
            const Timestamp ack = replicas[r].NewBatch(batch, p);
            if (channel.Delivers()) {
              senders[p].OnAck(r, ack);
            }
          }
        }
      }
      // Leader (replica 0) stabilizes occasionally.
      if (round % 5 == 4) {
        std::vector<OpRecord> out;
        const auto result = replicas[0].ProcessStable(&out);
        for (const OpRecord& op : out) {
          emitted.push_back(op);
        }
        for (std::uint32_t r = 1; r < kReplicas; ++r) {
          if (channel.Delivers()) {  // stable notices may be lost too
            replicas[r].OnStableNotice(result.stable_time);
          }
        }
      }
      // Prefix property: per replica and partition, PartitionTime must cover
      // every op at-or-below it (NewBatch enforces in-order application, so
      // it suffices that pending + emitted leave no gaps; checked at drain).
    }

    // Drain: keep flushing until every replica acked everything.
    for (int safety = 0; safety < 10000; ++safety) {
      bool all_acked = true;
      for (std::uint32_t p = 0; p < kPartitions; ++p) {
        for (std::uint32_t r = 0; r < kReplicas; ++r) {
          auto batch = senders[p].BatchFor(r);
          if (!batch.empty()) {
            all_acked = false;
            if (channel.Delivers()) {
              const Timestamp ack = replicas[r].NewBatch(batch, p);
              if (channel.Delivers()) {
                senders[p].OnAck(r, ack);
              }
            }
          }
        }
      }
      if (all_acked) {
        break;
      }
    }
    // Every replica converged to identical PartitionTime vectors.
    for (std::uint32_t p = 0; p < kPartitions; ++p) {
      for (std::uint32_t r = 0; r < kReplicas; ++r) {
        EXPECT_EQ(replicas[r].core().partition_time(p), next_ts[p])
            << "replica " << r << " partition " << p;
      }
    }
    // Final leader emission: heartbeat every partition far ahead so the
    // whole backlog stabilizes, then check it is gapless, ordered, complete.
    for (std::uint32_t p = 0; p < kPartitions; ++p) {
      replicas[0].Heartbeat(p, next_ts[p] + 1000);
    }
    std::vector<OpRecord> out;
    replicas[0].ProcessStable(&out);
    for (const OpRecord& op : out) {
      emitted.push_back(op);
    }
    EXPECT_EQ(emitted.size(), replicas[0].core().ops_received());
    for (std::size_t i = 1; i < emitted.size(); ++i) {
      const bool ordered = emitted[i - 1].ts < emitted[i].ts ||
                           (emitted[i - 1].ts == emitted[i].ts &&
                            emitted[i - 1].partition < emitted[i].partition);
      EXPECT_TRUE(ordered);
    }
  }
}

// All replicas fed the same (lossy) stream and stabilized independently
// produce identical op sequences — replicas never coordinate (§7.1: "their
// results are independent of relative order of inputs").
TEST(FtEunomiaPropertyTest, ReplicasEmitIdenticalSequences) {
  Rng rng(123);
  constexpr std::uint32_t kReplicas = 3;
  constexpr std::uint32_t kPartitions = 3;
  std::vector<EunomiaReplica> replicas;
  for (std::uint32_t r = 0; r < kReplicas; ++r) {
    replicas.emplace_back(r, kPartitions);
  }
  std::vector<ReplicatedSender> senders(kPartitions, ReplicatedSender(kReplicas));
  std::vector<Timestamp> next_ts(kPartitions, 1);
  std::vector<std::vector<Timestamp>> emissions(kReplicas);

  for (int round = 0; round < 200; ++round) {
    for (std::uint32_t p = 0; p < kPartitions; ++p) {
      next_ts[p] += 1 + rng.NextBounded(3);
      senders[p].Add(OpRecord{next_ts[p], p, 0, 0});
      // Deliver to replicas with independent losses; resend next round.
      for (std::uint32_t r = 0; r < kReplicas; ++r) {
        if (rng.NextBool(0.5)) {
          const auto batch = senders[p].BatchFor(r);
          const Timestamp ack = replicas[r].NewBatch(batch, p);
          senders[p].OnAck(r, ack);
        }
      }
    }
    for (std::uint32_t r = 0; r < kReplicas; ++r) {
      std::vector<OpRecord> out;
      replicas[r].ProcessStable(&out);  // every replica stabilizes itself
      for (const OpRecord& op : out) {
        emissions[r].push_back(op.ts * 100 + op.partition);
      }
    }
  }
  // Prefix equality: the shorter emission must be a prefix of the longer.
  for (std::uint32_t r = 1; r < kReplicas; ++r) {
    const std::size_t n = std::min(emissions[0].size(), emissions[r].size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(emissions[0][i], emissions[r][i]) << "replica " << r;
    }
  }
}

}  // namespace
}  // namespace eunomia
