// Integration tests for the transport layer (src/net/): client/server
// handshake and submission over both backends, session FIFO enforcement,
// backpressure, shutdown races, and the end-to-end acceptance property —
// the stable stream received over real TCP sockets is bit-for-bit identical
// to a LoopbackTransport run with the same input.
#include <gtest/gtest.h>
#include "src/common/sync.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/net/eunomia_client.h"
#include "src/net/eunomia_server.h"
#include "src/net/loopback_transport.h"
#include "src/net/tcp_transport.h"

namespace eunomia::net {
namespace {

constexpr Timestamp kFarFutureTs = 1'000'000'000'000ULL;

bool WaitUntil(const std::function<bool()>& predicate,
               std::chrono::milliseconds budget = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

// Deterministic interleaved workload: `partitions` producer connections
// each submit `batches` batches of `ops_per_batch` ops with per-partition
// strictly increasing timestamps, racing each other; a subscriber records
// the stable stream. Returns the concatenated stream in arrival order.
struct WorkloadResult {
  std::vector<OpRecord> stable;
  bool stream_broken = false;
  bool ok = false;
};

WorkloadResult RunInterleavedWorkload(Transport& transport,
                                      const std::string& listen_address,
                                      std::uint32_t partitions = 4,
                                      std::uint32_t batches = 25,
                                      std::uint32_t ops_per_batch = 40) {
  WorkloadResult result;
  EunomiaServer::Options options;
  options.num_partitions = partitions;
  options.num_shards = 2;
  options.stable_period_us = 200;
  EunomiaServer server(&transport, options);
  const std::string address = server.Start(listen_address);
  if (address.empty()) {
    return result;
  }

  eunomia::sync::Mutex mu{"net_test::mu", eunomia::sync::kRankLeaf};
  EunomiaClient::Options sub_options;
  sub_options.subscribe = true;
  sub_options.on_stable = [&](const std::vector<OpRecord>& ops) {
    eunomia::sync::MutexLock lock(mu);
    result.stable.insert(result.stable.end(), ops.begin(), ops.end());
  };
  EunomiaClient subscriber(&transport, address, sub_options);
  if (!subscriber.Connect()) {
    return result;
  }

  const std::uint64_t total =
      static_cast<std::uint64_t>(partitions) * batches * ops_per_batch;
  std::atomic<bool> all_ok{true};
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    producers.emplace_back([&, p] {
      EunomiaClient client(&transport, address, {});
      if (!client.Connect()) {
        all_ok.store(false);
        return;
      }
      for (std::uint32_t b = 0; b < batches; ++b) {
        std::vector<OpRecord> batch;
        batch.reserve(ops_per_batch);
        for (std::uint32_t i = 0; i < ops_per_batch; ++i) {
          // Unique, per-partition increasing, interleaved across partitions.
          const Timestamp ts =
              static_cast<Timestamp>(b * ops_per_batch + i + 1) * 7 + p;
          batch.push_back(OpRecord{ts, p, /*key=*/ts ^ p, /*tag=*/b});
        }
        if (!client.SubmitBatch(p, std::move(batch))) {
          all_ok.store(false);
          return;
        }
        std::this_thread::yield();
      }
      client.Heartbeat(p, kFarFutureTs);
      if (!client.WaitForAcks()) {
        all_ok.store(false);
      }
      client.Close();
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  const bool streamed = WaitUntil(
      [&] { return subscriber.stable_ops_received() >= total; });
  result.stream_broken = subscriber.stream_broken();
  subscriber.Close();
  server.Stop();
  result.ok = all_ok.load() && streamed;
  return result;
}

TEST(LoopbackTransportTest, DialUnknownAddressFails) {
  LoopbackTransport transport;
  EXPECT_EQ(transport.Dial("nobody-listens-here", {}), nullptr);
}

TEST(LoopbackTransportTest, ListenRejectsDuplicateName) {
  LoopbackTransport transport;
  Transport::AcceptHandler accept = [](const std::shared_ptr<Connection>&) {
    return ConnectionHandler{};
  };
  EXPECT_EQ(transport.Listen("svc", accept), "svc");
  EXPECT_EQ(transport.Listen("svc", accept), "");
}

TEST(NetE2eTest, LoopbackSubmitStabilizeSubscribe) {
  LoopbackTransport transport;
  const WorkloadResult result = RunInterleavedWorkload(transport, "eunomia");
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.stream_broken);
  ASSERT_EQ(result.stable.size(), 4u * 25 * 40);
  for (std::size_t i = 1; i < result.stable.size(); ++i) {
    EXPECT_LT(OrderKeyOf(result.stable[i - 1]), OrderKeyOf(result.stable[i]));
  }
}

TEST(NetE2eTest, TcpSubmitStabilizeSubscribe) {
  TcpTransport transport;
  const WorkloadResult result =
      RunInterleavedWorkload(transport, "127.0.0.1:0");
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.stream_broken);
  ASSERT_EQ(result.stable.size(), 4u * 25 * 40);
}

// The acceptance property: N client connections submitting interleaved
// batches to eunomiad's server over real TCP produce a stable stream
// bit-for-bit identical, in (ts, partition) order, to an in-process
// LoopbackTransport run with the same input.
TEST(NetE2eTest, TcpStableStreamBitForBitMatchesLoopback) {
  WorkloadResult tcp_result;
  {
    TcpTransport transport;
    tcp_result = RunInterleavedWorkload(transport, "127.0.0.1:0");
  }
  WorkloadResult loopback_result;
  {
    LoopbackTransport transport;
    loopback_result = RunInterleavedWorkload(transport, "eunomia");
  }
  ASSERT_TRUE(tcp_result.ok);
  ASSERT_TRUE(loopback_result.ok);
  EXPECT_FALSE(tcp_result.stream_broken);
  EXPECT_FALSE(loopback_result.stream_broken);
  ASSERT_EQ(tcp_result.stable.size(), loopback_result.stable.size());
  // Bit-for-bit: every field of every record, in the same order.
  EXPECT_EQ(tcp_result.stable, loopback_result.stable);
  for (std::size_t i = 1; i < tcp_result.stable.size(); ++i) {
    EXPECT_LT(OrderKeyOf(tcp_result.stable[i - 1]),
              OrderKeyOf(tcp_result.stable[i]));
  }
}

TEST(NetE2eTest, BackpressureWindowAdmitsEverythingEventually) {
  LoopbackTransport transport;
  EunomiaServer::Options options;
  options.num_partitions = 1;
  options.stable_period_us = 200;
  EunomiaServer server(&transport, options);
  const std::string address = server.Start("svc");
  ASSERT_FALSE(address.empty());
  EunomiaClient::Options client_options;
  client_options.max_inflight_ops = 64;  // tiny window: forces ack waits
  EunomiaClient client(&transport, address, client_options);
  ASSERT_TRUE(client.Connect());
  Timestamp ts = 0;
  for (int b = 0; b < 50; ++b) {
    std::vector<OpRecord> batch;
    for (int i = 0; i < 32; ++i) {
      batch.push_back(OpRecord{++ts, 0, 0, 0});
    }
    ASSERT_TRUE(client.SubmitBatch(0, std::move(batch)));
  }
  ASSERT_TRUE(client.WaitForAcks());
  EXPECT_EQ(client.ops_acked(), 50u * 32);
  // Every batch's ack round trip was measured.
  EXPECT_EQ(client.ack_latency_histogram()->count(), 50u);
  client.Heartbeat(0, kFarFutureTs);
  ASSERT_TRUE(WaitUntil([&] { return server.ops_stabilized() >= 50u * 32; }));
  client.Close();
  server.Stop();
}

TEST(NetE2eTest, ProtocolVersionMismatchClosesConnection) {
  LoopbackTransport transport;
  EunomiaServer::Options options;
  options.num_partitions = 1;
  EunomiaServer server(&transport, options);
  const std::string address = server.Start("svc");
  ASSERT_FALSE(address.empty());
  std::atomic<bool> closed{false};
  ConnectionHandler handler;
  handler.on_close = [&](Connection&, wire::WireError) { closed.store(true); };
  auto connection = transport.Dial(address, std::move(handler));
  ASSERT_NE(connection, nullptr);
  wire::HelloMsg hello;
  hello.protocol_version = 99;
  connection->SendFrame(wire::MsgType::kHello, wire::EncodeHello(hello));
  EXPECT_TRUE(WaitUntil([&] { return closed.load(); }));
  EXPECT_EQ(server.connections_rejected(), 1u);
  server.Stop();
}

TEST(NetE2eTest, FrameBeforeHelloIsRejected) {
  LoopbackTransport transport;
  EunomiaServer::Options options;
  options.num_partitions = 1;
  EunomiaServer server(&transport, options);
  const std::string address = server.Start("svc");
  ASSERT_FALSE(address.empty());
  std::atomic<bool> closed{false};
  ConnectionHandler handler;
  handler.on_close = [&](Connection&, wire::WireError) { closed.store(true); };
  auto connection = transport.Dial(address, std::move(handler));
  ASSERT_NE(connection, nullptr);
  connection->SendFrame(wire::MsgType::kSubmitBatch,
                        wire::EncodeSubmitBatch(0, {OpRecord{1, 0, 0, 0}}));
  EXPECT_TRUE(WaitUntil([&] { return closed.load(); }));
  server.Stop();
}

// A raw TCP peer spraying garbage must be detected by the frame decoder and
// disconnected — never crash the server or corrupt the service.
TEST(NetE2eTest, GarbageBytesOverTcpAreRejected) {
  TcpTransport transport;
  EunomiaServer::Options options;
  options.num_partitions = 1;
  EunomiaServer server(&transport, options);
  const std::string address = server.Start("127.0.0.1:0");
  ASSERT_FALSE(address.empty());
  const auto colon = address.rfind(':');
  const int port = std::stoi(address.substr(colon + 1));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char garbage[64] = "this is definitely not an EUNO frame, not even close";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);
  // The server closes on the bad magic; our read sees EOF.
  char buffer[16];
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  EXPECT_LE(n, 0);
  ::close(fd);
  server.Stop();
}

TEST(NetE2eTest, ServerStopWhileClientsAreSubmitting) {
  LoopbackTransport transport;
  EunomiaServer::Options options;
  options.num_partitions = 2;
  options.stable_period_us = 200;
  EunomiaServer server(&transport, options);
  const std::string address = server.Start("svc");
  ASSERT_FALSE(address.empty());
  // Two producers hammer submissions while the main thread stops the
  // server: the disconnect must surface as SubmitBatch returning false,
  // never as a crash or hang (the satellite regression this PR hardens).
  std::vector<std::thread> producers;
  std::atomic<bool> go{true};
  for (std::uint32_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      EunomiaClient client(&transport, address, {});
      if (!client.Connect()) {
        return;
      }
      Timestamp ts = 0;
      while (go.load(std::memory_order_relaxed)) {
        std::vector<OpRecord> batch;
        for (int i = 0; i < 16; ++i) {
          batch.push_back(OpRecord{++ts, p, 0, 0});
        }
        if (!client.SubmitBatch(p, std::move(batch))) {
          break;  // server went away — expected
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Stop();
  go.store(false);
  for (auto& producer : producers) {
    producer.join();
  }
  SUCCEED();
}

TEST(NetE2eTest, OversizedBatchesAreChunkedIntoMultipleFrames) {
  // A submission or emission bigger than one frame must be split, not
  // dropped or rejected: the client chunks SubmitBatch, the server chunks
  // StableBatch (consecutive stream sequence numbers). Tiny frame caps
  // make the splitting observable without 599k-op batches.
  LoopbackTransport transport;
  EunomiaServer::Options options;
  options.num_partitions = 1;
  options.stable_period_us = 200;
  options.max_ops_per_stable_frame = 8;
  EunomiaServer server(&transport, options);
  const std::string address = server.Start("svc");
  ASSERT_FALSE(address.empty());

  eunomia::sync::Mutex mu{"net_test::mu", eunomia::sync::kRankLeaf};
  std::vector<OpRecord> stable;
  std::size_t stable_batches = 0;
  EunomiaClient::Options sub_options;
  sub_options.subscribe = true;
  sub_options.on_stable = [&](const std::vector<OpRecord>& ops) {
    eunomia::sync::MutexLock lock(mu);
    stable.insert(stable.end(), ops.begin(), ops.end());
    ++stable_batches;
    EXPECT_LE(ops.size(), 8u);  // the server-side frame cap held
  };
  EunomiaClient subscriber(&transport, address, sub_options);
  ASSERT_TRUE(subscriber.Connect());

  EunomiaClient::Options client_options;
  client_options.max_ops_per_frame = 16;
  EunomiaClient client(&transport, address, client_options);
  ASSERT_TRUE(client.Connect());
  std::vector<OpRecord> batch;
  for (Timestamp ts = 1; ts <= 500; ++ts) {
    batch.push_back(OpRecord{ts, 0, ts, 0});
  }
  ASSERT_TRUE(client.SubmitBatch(0, std::move(batch)));  // 500 ops, cap 16
  client.Heartbeat(0, kFarFutureTs);
  ASSERT_TRUE(client.WaitForAcks());
  EXPECT_EQ(client.ops_acked(), 500u);
  ASSERT_TRUE(WaitUntil([&] { return subscriber.stable_ops_received() >= 500; }));
  EXPECT_FALSE(subscriber.stream_broken());
  {
    eunomia::sync::MutexLock lock(mu);
    ASSERT_EQ(stable.size(), 500u);
    EXPECT_GE(stable_batches, 63u);  // 500 ops / 8-op frames
    for (std::size_t i = 1; i < stable.size(); ++i) {
      EXPECT_LT(OrderKeyOf(stable[i - 1]), OrderKeyOf(stable[i]));
    }
  }
  subscriber.Close();
  client.Close();
  server.Stop();
}

// Regression (PR 10 satellite): finished connections must be reaped even
// when the accept path goes quiet afterwards. A burst of client churn
// followed by idleness must not leave dead fds/threads tracked until
// Shutdown — the periodic idle reaper bounds their lifetime.
TEST(TcpTransportTest, IdleReapReleasesChurnedConnections) {
  TcpTransport transport(/*idle_reap_period=*/std::chrono::milliseconds(50));
  std::atomic<int> closes{0};
  Transport::AcceptHandler accept = [&](const std::shared_ptr<Connection>&) {
    ConnectionHandler handler;
    handler.on_close = [&](Connection&, wire::WireError) {
      closes.fetch_add(1);
    };
    return handler;
  };
  const std::string address = transport.Listen("127.0.0.1:0", accept);
  ASSERT_FALSE(address.empty());
  constexpr int kChurn = 8;
  for (int i = 0; i < kChurn; ++i) {
    auto connection = transport.Dial(address, {});
    ASSERT_NE(connection, nullptr);
    ASSERT_TRUE(connection->SendFrame(wire::MsgType::kHeartbeat, "hi"));
    connection->Close();
  }
  ASSERT_TRUE(WaitUntil([&] { return closes.load() == kChurn; }));
  // No accepts or dials happen from here on: only the idle reaper can
  // shrink the registry. Both sides of every churned connection (dialed +
  // accepted) must go away; nothing live remains.
  EXPECT_TRUE(WaitUntil([&] { return transport.tracked_connections() == 0; },
                        std::chrono::seconds(5)));
  transport.Shutdown();
}

TEST(NetE2eTest, FtServerStabilizesOverLoopback) {
  LoopbackTransport transport;
  EunomiaServer::Options options;
  options.fault_tolerant = true;
  options.num_partitions = 2;
  options.num_replicas = 3;
  options.stable_period_us = 200;
  EunomiaServer server(&transport, options);
  const std::string address = server.Start("ft");
  ASSERT_FALSE(address.empty());
  EunomiaClient client(&transport, address, {});
  ASSERT_TRUE(client.Connect());
  for (std::uint32_t p = 0; p < 2; ++p) {
    std::vector<OpRecord> batch;
    for (int i = 1; i <= 100; ++i) {
      batch.push_back(OpRecord{static_cast<Timestamp>(i), p, 0, 0});
    }
    ASSERT_TRUE(client.SubmitBatch(p, std::move(batch)));
    client.Heartbeat(p, kFarFutureTs);
  }
  ASSERT_TRUE(WaitUntil([&] { return server.ops_stabilized() >= 200; }));
  client.Close();
  server.Stop();
}

}  // namespace
}  // namespace eunomia::net
