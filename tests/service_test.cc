// Tests for the native multithreaded Eunomia services (§6) and the leader
// detector. These use real threads with short wall-clock budgets.
#include <gtest/gtest.h>
#include "src/common/sync.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/clock/hybrid_clock.h"
#include "src/common/random.h"
#include "src/eunomia/leader.h"
#include "src/eunomia/service.h"

namespace eunomia {
namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<OpRecord> MakeBatch(PartitionId p, Timestamp start, int n) {
  std::vector<OpRecord> batch;
  for (int i = 0; i < n; ++i) {
    batch.push_back(OpRecord{start + static_cast<Timestamp>(i), p, 0, 0});
  }
  return batch;
}

TEST(EunomiaServiceTest, StabilizesSubmittedOpsInOrder) {
  std::vector<Timestamp> emitted;
  eunomia::sync::Mutex mu{"service_test::mu", eunomia::sync::kRankLeaf};
  EunomiaService::Options options;
  options.num_partitions = 2;
  options.stable_period_us = 200;
  options.sink = [&](const std::vector<OpRecord>& ops) {
    eunomia::sync::MutexLock lock(mu);
    for (const OpRecord& op : ops) {
      emitted.push_back(op.ts);
    }
  };
  EunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 100, 50));
  service.SubmitBatch(1, MakeBatch(1, 1000, 50));
  // Heartbeats move both partitions past every submitted op.
  service.Heartbeat(0, 5000);
  service.Heartbeat(1, 5000);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.ops_stabilized() < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_EQ(service.ops_stabilized(), 100u);
  eunomia::sync::MutexLock lock(mu);
  ASSERT_EQ(emitted.size(), 100u);
  for (std::size_t i = 1; i < emitted.size(); ++i) {
    EXPECT_LE(emitted[i - 1], emitted[i]);
  }
}

TEST(EunomiaServiceTest, SilentPartitionBlocksStabilityUntilHeartbeat) {
  EunomiaService::Options options;
  options.num_partitions = 2;
  options.stable_period_us = 200;
  EunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 100, 10));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(service.ops_stabilized(), 0u);  // partition 1 silent
  service.Heartbeat(1, 1000);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.ops_stabilized() < 10 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_EQ(service.ops_stabilized(), 10u);
}

TEST(EunomiaServiceTest, ConcurrentProducers) {
  EunomiaService::Options options;
  options.num_partitions = 8;
  options.stable_period_us = 200;
  EunomiaService service(options);
  service.Start();
  constexpr int kOpsPerPartition = 2000;
  std::vector<std::thread> producers;
  for (PartitionId p = 0; p < 8; ++p) {
    producers.emplace_back([&service, p] {
      HybridClock clock;
      for (int i = 0; i < kOpsPerPartition / 100; ++i) {
        std::vector<OpRecord> batch;
        for (int j = 0; j < 100; ++j) {
          batch.push_back(OpRecord{clock.TimestampUpdate(NowMicros(), 0), p, 0, 0});
        }
        service.SubmitBatch(p, std::move(batch));
      }
      service.Heartbeat(p, clock.max_ts() + 1'000'000'000ULL);
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.ops_stabilized() < 8ull * kOpsPerPartition &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_EQ(service.ops_stabilized(), 8ull * kOpsPerPartition);
}

TEST(EunomiaServiceTest, HeartbeatForwardedOnlyWhenItAdvances) {
  // Regression: the stabilizer used to re-deliver the unchanged inbox
  // heartbeat to the core on every tick, inflating heartbeats_received_.
  EunomiaService::Options options;
  options.num_partitions = 1;
  options.stable_period_us = 200;
  EunomiaService service(options);
  service.Start();
  service.Heartbeat(0, 100);
  const auto first_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.heartbeats_forwarded() < 1 &&
         std::chrono::steady_clock::now() < first_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.heartbeats_forwarded(), 1u);
  service.Heartbeat(0, 100);  // unchanged value
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // ~100 ticks
  EXPECT_EQ(service.heartbeats_forwarded(), 1u);
  service.Heartbeat(0, 200);  // advances
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.heartbeats_forwarded() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_EQ(service.heartbeats_forwarded(), 2u);
}

TEST(EunomiaServiceTest, StopFlushesOpsStagedBehindTheGlobalMinGate) {
  // Regression: with num_shards > 1, ops one shard extracted as stable but
  // the merge stage still withheld (another shard's stable time lagging)
  // must be delivered on Stop, not destroyed — the unsharded service
  // delivered everything it extracted.
  std::vector<Timestamp> emitted;
  eunomia::sync::Mutex mu{"service_test::mu", eunomia::sync::kRankLeaf};
  EunomiaService::Options options;
  options.num_partitions = 4;  // shard 0 owns {0,1}, shard 1 owns {2,3}
  options.num_shards = 2;
  options.stable_period_us = 200;
  options.sink = [&](const std::vector<OpRecord>& ops) {
    eunomia::sync::MutexLock lock(mu);
    for (const OpRecord& op : ops) {
      emitted.push_back(op.ts);
    }
  };
  EunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 100, 5));
  service.SubmitBatch(1, MakeBatch(1, 200, 5));
  service.Heartbeat(0, 1000);
  service.Heartbeat(1, 1000);
  // Once both heartbeats are forwarded, the same shard iteration extracts
  // and stages all 10 ops; partitions 2/3 stay silent so the global min is
  // zero and nothing may be emitted yet.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.heartbeats_forwarded() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.heartbeats_forwarded(), 2u);
  EXPECT_EQ(service.ops_stabilized(), 0u);
  service.Stop();
  EXPECT_EQ(service.ops_stabilized(), 10u);
  eunomia::sync::MutexLock lock(mu);
  ASSERT_EQ(emitted.size(), 10u);
  EXPECT_TRUE(std::is_sorted(emitted.begin(), emitted.end()));
}

TEST(EunomiaServiceTest, ShardCountClampedToPartitions) {
  EunomiaService::Options options;
  options.num_partitions = 3;
  options.num_shards = 16;
  EunomiaService service(options);
  EXPECT_EQ(service.num_shards(), 3u);
}

// Shard-equivalence property: for random workloads the multi-shard service
// emits the same stable-op sequence as num_shards = 1. Batch boundaries at
// the sink may differ; the concatenated emission order may not.
TEST(EunomiaServicePropertyTest, ShardedEmissionMatchesUnsharded) {
  constexpr std::uint32_t kPartitions = 8;
  // Pre-generate one workload: per-partition monotone timestamp batches in
  // a fixed interleaved submission order, so every configuration sees
  // byte-identical input.
  Rng rng(4242);
  std::vector<std::pair<PartitionId, std::vector<OpRecord>>> workload;
  std::vector<Timestamp> next(kPartitions, 0);
  std::uint64_t total_ops = 0;
  std::uint64_t tag = 0;
  for (int round = 0; round < 120; ++round) {
    const auto p = static_cast<PartitionId>(rng.NextBounded(kPartitions));
    std::vector<OpRecord> batch;
    const std::uint64_t n = 1 + rng.NextBounded(30);
    for (std::uint64_t i = 0; i < n; ++i) {
      next[p] += 1 + rng.NextBounded(50);
      batch.push_back(OpRecord{next[p], p, rng.NextBounded(1000), tag++});
    }
    total_ops += batch.size();
    workload.emplace_back(p, std::move(batch));
  }
  const Timestamp drain_hb =
      *std::max_element(next.begin(), next.end()) + 1'000'000;

  auto run = [&](std::uint32_t num_shards) {
    std::vector<OpRecord> emitted;
    eunomia::sync::Mutex mu{"service_test::mu", eunomia::sync::kRankLeaf};
    EunomiaService::Options options;
    options.num_partitions = kPartitions;
    options.num_shards = num_shards;
    options.stable_period_us = 100;
    options.sink = [&](const std::vector<OpRecord>& ops) {
      eunomia::sync::MutexLock lock(mu);
      emitted.insert(emitted.end(), ops.begin(), ops.end());
    };
    EunomiaService service(options);
    service.Start();
    for (const auto& [p, batch] : workload) {
      service.SubmitBatch(p, batch);
    }
    for (PartitionId p = 0; p < kPartitions; ++p) {
      service.Heartbeat(p, drain_hb);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (service.ops_stabilized() < total_ops &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    service.Stop();
    EXPECT_EQ(service.ops_stabilized(), total_ops)
        << "num_shards=" << num_shards;
    eunomia::sync::MutexLock lock(mu);
    return emitted;
  };

  const std::vector<OpRecord> baseline = run(1);
  ASSERT_EQ(baseline.size(), total_ops);
  for (const std::uint32_t shards : {2u, 3u, 4u, 8u}) {
    const std::vector<OpRecord> sharded = run(shards);
    ASSERT_EQ(sharded.size(), baseline.size()) << "num_shards=" << shards;
    EXPECT_TRUE(sharded == baseline)
        << "emission order diverged at num_shards=" << shards;
  }
}

TEST(FtEunomiaServiceTest, LeaderEmitsAndAcksAdvance) {
  FtEunomiaService::Options options;
  options.num_partitions = 2;
  options.num_replicas = 3;
  options.stable_period_us = 200;
  std::atomic<std::uint64_t> sink_count{0};
  options.sink = [&](const std::vector<OpRecord>& ops) {
    sink_count.fetch_add(ops.size());
  };
  FtEunomiaService service(options);
  service.Start();
  EXPECT_EQ(service.CurrentLeader(), std::optional<std::uint32_t>(0));
  service.SubmitBatch(0, MakeBatch(0, 10, 20));
  service.SubmitBatch(1, MakeBatch(1, 10, 20));
  service.Heartbeat(0, 10'000);
  service.Heartbeat(1, 10'000);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.ops_stabilized() < 40 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.ops_stabilized(), 40u);
  EXPECT_EQ(sink_count.load(), 40u);
  // Acks from all three replicas reached the op frontier.
  for (std::uint32_t r = 0; r < 3; ++r) {
    const auto ack_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (service.AckOf(r, 0) < 29 &&
           std::chrono::steady_clock::now() < ack_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(service.AckOf(r, 0), 29u);
  }
  service.Stop();
}

TEST(FtEunomiaServiceTest, CrashFailover) {
  FtEunomiaService::Options options;
  options.num_partitions = 1;
  options.num_replicas = 3;
  options.stable_period_us = 200;
  FtEunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 10, 10));
  service.Heartbeat(0, 1000);
  auto wait_for = [&service](std::uint64_t n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (service.ops_stabilized() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  wait_for(10);
  EXPECT_EQ(service.ops_stabilized(), 10u);

  service.CrashReplica(0);
  EXPECT_EQ(service.CurrentLeader(), std::optional<std::uint32_t>(1));
  service.SubmitBatch(0, MakeBatch(0, 2000, 10));
  service.Heartbeat(0, 10'000);
  wait_for(20);
  EXPECT_GE(service.ops_stabilized(), 20u);

  service.CrashReplica(1);
  service.CrashReplica(2);
  EXPECT_FALSE(service.AnyReplicaAlive());
  EXPECT_EQ(service.CurrentLeader(), std::nullopt);
  service.Stop();
}

TEST(FtEunomiaServiceTest, StopIsNotACrash) {
  // Regression: Stop() used to store alive = false for every replica, so a
  // post-Stop AckOf returned kTimestampMax as if the replica had failed.
  FtEunomiaService::Options options;
  options.num_partitions = 1;
  options.num_replicas = 2;
  options.stable_period_us = 200;
  FtEunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 10, 10));  // ts 10..19
  service.Heartbeat(0, 100);
  for (std::uint32_t r = 0; r < 2; ++r) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (service.AckOf(r, 0) < 19 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  service.Stop();
  for (std::uint32_t r = 0; r < 2; ++r) {
    EXPECT_EQ(service.AckOf(r, 0), 19u) << "replica " << r;
    EXPECT_NE(service.AckOf(r, 0), kTimestampMax);
  }
  EXPECT_TRUE(service.AnyReplicaAlive());  // stopped, not crashed
  EXPECT_EQ(service.CurrentLeader(), std::optional<std::uint32_t>(0));
}

TEST(FtEunomiaServiceTest, LeaderSinkCanCrashOwnReplica) {
  // Regression: CrashReplica called from the leader's sink callback runs on
  // the leader's own thread; an unguarded join would self-deadlock.
  FtEunomiaService::Options options;
  options.num_partitions = 1;
  options.num_replicas = 3;
  options.stable_period_us = 200;
  std::atomic<bool> crashed{false};
  std::atomic<std::uint64_t> sink_count{0};
  FtEunomiaService* svc = nullptr;
  options.sink = [&](const std::vector<OpRecord>& ops) {
    sink_count.fetch_add(ops.size());
    if (!crashed.exchange(true)) {
      svc->CrashReplica(0);  // leader crashes itself mid-emission
    }
  };
  FtEunomiaService service(options);
  svc = &service;
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 10, 10));
  service.Heartbeat(0, 1000);
  auto wait_for = [&service](std::uint64_t n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (service.ops_stabilized() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  wait_for(10);
  // The counter advances just before the sink runs; poll for the failover.
  const auto crash_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.CurrentLeader() != std::optional<std::uint32_t>(1) &&
         std::chrono::steady_clock::now() < crash_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(crashed.load());
  EXPECT_EQ(service.CurrentLeader(), std::optional<std::uint32_t>(1));
  // The survivors keep stabilizing new traffic.
  service.SubmitBatch(0, MakeBatch(0, 5000, 10));
  service.Heartbeat(0, 10'000);
  wait_for(20);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Exactly once: the crashing leader broadcast its stable notice before the
  // sink ran, so the successor discards that prefix instead of re-emitting.
  EXPECT_EQ(service.ops_stabilized(), 20u);
  EXPECT_EQ(sink_count.load(), 20u);
  service.Stop();  // reaps the self-crashed replica's thread
}

TEST(OmegaDetectorTest, LowestUnsuspectedLeads) {
  OmegaDetector omega(3, /*timeout_us=*/1000);
  omega.OnAlive(0, 0);
  omega.OnAlive(1, 0);
  omega.OnAlive(2, 0);
  EXPECT_EQ(omega.Leader(500), std::optional<std::uint32_t>(0));
  // Replica 0 goes silent.
  omega.OnAlive(1, 2000);
  omega.OnAlive(2, 2000);
  EXPECT_EQ(omega.Leader(2500), std::optional<std::uint32_t>(1));
  // Replica 0 comes back: leadership returns (Omega stabilizes on min id).
  omega.OnAlive(0, 3000);
  EXPECT_EQ(omega.Leader(3200), std::optional<std::uint32_t>(0));
}

TEST(OmegaDetectorTest, RemoveIsPermanent) {
  OmegaDetector omega(2, 1000);
  omega.OnAlive(0, 0);
  omega.OnAlive(1, 0);
  omega.Remove(0);
  EXPECT_EQ(omega.Leader(100), std::optional<std::uint32_t>(1));
  omega.OnAlive(0, 200);  // late heartbeat from a removed replica
  EXPECT_EQ(omega.Leader(300), std::optional<std::uint32_t>(1));
}

TEST(OmegaDetectorTest, AllSuspectedMeansNoLeader) {
  OmegaDetector omega(2, 100);
  omega.OnAlive(0, 0);
  omega.OnAlive(1, 0);
  EXPECT_EQ(omega.Leader(1000), std::nullopt);
}

// --- lifecycle hardening (the transport layer races these paths) -------------

TEST(EunomiaServiceTest, DoubleStopIsIdempotent) {
  EunomiaService::Options options;
  options.num_partitions = 2;
  options.stable_period_us = 200;
  EunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 100, 10));
  service.Stop();
  service.Stop();  // second Stop: no-op, no crash, no double-join
  EXPECT_FALSE(service.running());
}

TEST(EunomiaServiceTest, ConcurrentStopCallersBothReturnStopped) {
  EunomiaService::Options options;
  options.num_partitions = 4;
  options.num_shards = 2;
  options.stable_period_us = 200;
  EunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 100, 50));
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&service] { service.Stop(); });
  }
  for (auto& stopper : stoppers) {
    stopper.join();
  }
  // Every caller returned only after the pipeline was fully down.
  EXPECT_FALSE(service.running());
}

TEST(EunomiaServiceTest, SubmitAndHeartbeatAfterStopAreDropped) {
  EunomiaService::Options options;
  options.num_partitions = 1;
  options.stable_period_us = 200;
  EunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 100, 10));
  service.Heartbeat(0, 5000);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.ops_stabilized() < 10 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  const std::uint64_t submitted = service.ops_submitted();
  const std::uint64_t stabilized = service.ops_stabilized();
  service.SubmitBatch(0, MakeBatch(0, 10000, 10));
  service.Heartbeat(0, 20000);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(service.ops_submitted(), submitted);
  EXPECT_EQ(service.ops_stabilized(), stabilized);
}

TEST(EunomiaServiceTest, SubmittersRacingStopNeverCrash) {
  // The regression the transport layer motivates: a disconnecting TCP
  // client's last SubmitBatch can race service shutdown.
  for (int round = 0; round < 5; ++round) {
    EunomiaService::Options options;
    options.num_partitions = 4;
    options.num_shards = 2;
    options.stable_period_us = 100;
    EunomiaService service(options);
    service.Start();
    std::atomic<bool> go{true};
    std::vector<std::thread> submitters;
    for (std::uint32_t p = 0; p < 4; ++p) {
      submitters.emplace_back([&service, &go, p] {
        Timestamp ts = 0;
        while (go.load(std::memory_order_relaxed)) {
          service.SubmitBatch(p, MakeBatch(p, ts += 100, 16));
          service.Heartbeat(p, ts + 50);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    service.Stop();
    go.store(false);
    for (auto& submitter : submitters) {
      submitter.join();
    }
  }
  SUCCEED();
}

TEST(EunomiaServiceTest, StableListenersSeeTheSameStreamAsTheSink) {
  std::vector<OpRecord> sink_ops;
  std::vector<OpRecord> listener_ops;
  EunomiaService::Options options;
  options.num_partitions = 2;
  options.stable_period_us = 200;
  options.sink = [&](const std::vector<OpRecord>& ops) {
    sink_ops.insert(sink_ops.end(), ops.begin(), ops.end());
  };
  EunomiaService service(options);
  // Registered before Start: the listener observes every emission the sink
  // does, in the same order (both run on the merge thread).
  service.AddStableListener([&](const std::vector<OpRecord>& ops) {
    listener_ops.insert(listener_ops.end(), ops.begin(), ops.end());
  });
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 100, 50));
  service.SubmitBatch(1, MakeBatch(1, 1000, 50));
  service.Heartbeat(0, 5000);
  service.Heartbeat(1, 5000);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.ops_stabilized() < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  ASSERT_EQ(sink_ops.size(), 100u);
  EXPECT_EQ(listener_ops, sink_ops);
}

TEST(FtEunomiaServiceTest, DoubleStopAndSubmitAfterStopAreSafe) {
  FtEunomiaService::Options options;
  options.num_partitions = 2;
  options.num_replicas = 3;
  options.stable_period_us = 200;
  FtEunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 100, 10));
  service.Heartbeat(0, 500);
  service.Heartbeat(1, 500);
  service.Stop();
  service.Stop();
  const std::uint64_t stabilized = service.ops_stabilized();
  service.SubmitBatch(0, MakeBatch(0, 10000, 10));  // dropped, not buffered
  service.Heartbeat(0, 20000);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(service.ops_stabilized(), stabilized);
}

TEST(FtEunomiaServiceTest, ConcurrentStopAndSubmittersNeverCrash) {
  FtEunomiaService::Options options;
  options.num_partitions = 2;
  options.num_replicas = 3;
  options.stable_period_us = 100;
  FtEunomiaService service(options);
  service.Start();
  std::atomic<bool> go{true};
  std::vector<std::thread> submitters;
  for (std::uint32_t p = 0; p < 2; ++p) {
    submitters.emplace_back([&service, &go, p] {
      Timestamp ts = 0;
      while (go.load(std::memory_order_relaxed)) {
        service.SubmitBatch(p, MakeBatch(p, ts += 100, 8));
      }
    });
  }
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 2; ++i) {
    stoppers.emplace_back([&service] { service.Stop(); });
  }
  for (auto& stopper : stoppers) {
    stopper.join();
  }
  go.store(false);
  for (auto& submitter : submitters) {
    submitter.join();
  }
  SUCCEED();
}

}  // namespace
}  // namespace eunomia
