// Tests for the native multithreaded Eunomia services (§6) and the leader
// detector. These use real threads with short wall-clock budgets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/clock/hybrid_clock.h"
#include "src/eunomia/leader.h"
#include "src/eunomia/service.h"

namespace eunomia {
namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<OpRecord> MakeBatch(PartitionId p, Timestamp start, int n) {
  std::vector<OpRecord> batch;
  for (int i = 0; i < n; ++i) {
    batch.push_back(OpRecord{start + static_cast<Timestamp>(i), p, 0, 0});
  }
  return batch;
}

TEST(EunomiaServiceTest, StabilizesSubmittedOpsInOrder) {
  std::vector<Timestamp> emitted;
  std::mutex mu;
  EunomiaService::Options options;
  options.num_partitions = 2;
  options.stable_period_us = 200;
  options.sink = [&](const std::vector<OpRecord>& ops) {
    std::lock_guard<std::mutex> lock(mu);
    for (const OpRecord& op : ops) {
      emitted.push_back(op.ts);
    }
  };
  EunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 100, 50));
  service.SubmitBatch(1, MakeBatch(1, 1000, 50));
  // Heartbeats move both partitions past every submitted op.
  service.Heartbeat(0, 5000);
  service.Heartbeat(1, 5000);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.ops_stabilized() < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_EQ(service.ops_stabilized(), 100u);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(emitted.size(), 100u);
  for (std::size_t i = 1; i < emitted.size(); ++i) {
    EXPECT_LE(emitted[i - 1], emitted[i]);
  }
}

TEST(EunomiaServiceTest, SilentPartitionBlocksStabilityUntilHeartbeat) {
  EunomiaService::Options options;
  options.num_partitions = 2;
  options.stable_period_us = 200;
  EunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 100, 10));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(service.ops_stabilized(), 0u);  // partition 1 silent
  service.Heartbeat(1, 1000);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.ops_stabilized() < 10 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_EQ(service.ops_stabilized(), 10u);
}

TEST(EunomiaServiceTest, ConcurrentProducers) {
  EunomiaService::Options options;
  options.num_partitions = 8;
  options.stable_period_us = 200;
  EunomiaService service(options);
  service.Start();
  constexpr int kOpsPerPartition = 2000;
  std::vector<std::thread> producers;
  for (PartitionId p = 0; p < 8; ++p) {
    producers.emplace_back([&service, p] {
      HybridClock clock;
      for (int i = 0; i < kOpsPerPartition / 100; ++i) {
        std::vector<OpRecord> batch;
        for (int j = 0; j < 100; ++j) {
          batch.push_back(OpRecord{clock.TimestampUpdate(NowMicros(), 0), p, 0, 0});
        }
        service.SubmitBatch(p, std::move(batch));
      }
      service.Heartbeat(p, clock.max_ts() + 1'000'000'000ULL);
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.ops_stabilized() < 8ull * kOpsPerPartition &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_EQ(service.ops_stabilized(), 8ull * kOpsPerPartition);
}

TEST(FtEunomiaServiceTest, LeaderEmitsAndAcksAdvance) {
  FtEunomiaService::Options options;
  options.num_partitions = 2;
  options.num_replicas = 3;
  options.stable_period_us = 200;
  std::atomic<std::uint64_t> sink_count{0};
  options.sink = [&](const std::vector<OpRecord>& ops) {
    sink_count.fetch_add(ops.size());
  };
  FtEunomiaService service(options);
  service.Start();
  EXPECT_EQ(service.CurrentLeader(), std::optional<std::uint32_t>(0));
  service.SubmitBatch(0, MakeBatch(0, 10, 20));
  service.SubmitBatch(1, MakeBatch(1, 10, 20));
  service.Heartbeat(0, 10'000);
  service.Heartbeat(1, 10'000);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.ops_stabilized() < 40 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.ops_stabilized(), 40u);
  EXPECT_EQ(sink_count.load(), 40u);
  // Acks from all three replicas reached the op frontier.
  for (std::uint32_t r = 0; r < 3; ++r) {
    const auto ack_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (service.AckOf(r, 0) < 29 &&
           std::chrono::steady_clock::now() < ack_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(service.AckOf(r, 0), 29u);
  }
  service.Stop();
}

TEST(FtEunomiaServiceTest, CrashFailover) {
  FtEunomiaService::Options options;
  options.num_partitions = 1;
  options.num_replicas = 3;
  options.stable_period_us = 200;
  FtEunomiaService service(options);
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 10, 10));
  service.Heartbeat(0, 1000);
  auto wait_for = [&service](std::uint64_t n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (service.ops_stabilized() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  wait_for(10);
  EXPECT_EQ(service.ops_stabilized(), 10u);

  service.CrashReplica(0);
  EXPECT_EQ(service.CurrentLeader(), std::optional<std::uint32_t>(1));
  service.SubmitBatch(0, MakeBatch(0, 2000, 10));
  service.Heartbeat(0, 10'000);
  wait_for(20);
  EXPECT_GE(service.ops_stabilized(), 20u);

  service.CrashReplica(1);
  service.CrashReplica(2);
  EXPECT_FALSE(service.AnyReplicaAlive());
  EXPECT_EQ(service.CurrentLeader(), std::nullopt);
  service.Stop();
}

TEST(OmegaDetectorTest, LowestUnsuspectedLeads) {
  OmegaDetector omega(3, /*timeout_us=*/1000);
  omega.OnAlive(0, 0);
  omega.OnAlive(1, 0);
  omega.OnAlive(2, 0);
  EXPECT_EQ(omega.Leader(500), std::optional<std::uint32_t>(0));
  // Replica 0 goes silent.
  omega.OnAlive(1, 2000);
  omega.OnAlive(2, 2000);
  EXPECT_EQ(omega.Leader(2500), std::optional<std::uint32_t>(1));
  // Replica 0 comes back: leadership returns (Omega stabilizes on min id).
  omega.OnAlive(0, 3000);
  EXPECT_EQ(omega.Leader(3200), std::optional<std::uint32_t>(0));
}

TEST(OmegaDetectorTest, RemoveIsPermanent) {
  OmegaDetector omega(2, 1000);
  omega.OnAlive(0, 0);
  omega.OnAlive(1, 0);
  omega.Remove(0);
  EXPECT_EQ(omega.Leader(100), std::optional<std::uint32_t>(1));
  omega.OnAlive(0, 200);  // late heartbeat from a removed replica
  EXPECT_EQ(omega.Leader(300), std::optional<std::uint32_t>(1));
}

TEST(OmegaDetectorTest, AllSuspectedMeansNoLeader) {
  OmegaDetector omega(2, 100);
  omega.OnAlive(0, 0);
  omega.OnAlive(1, 0);
  EXPECT_EQ(omega.Leader(1000), std::nullopt);
}

}  // namespace
}  // namespace eunomia
