// Tests for the workload generator: distribution shapes, op mix, closed-loop
// behaviour, and determinism.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/georep/geo_system.h"
#include "src/workload/workload.h"

namespace eunomia::wl {
namespace {

// Minimal in-memory GeoSystem that records issued ops and completes them
// after a fixed simulated latency.
class RecordingSystem final : public geo::GeoSystem {
 public:
  RecordingSystem(sim::Simulator* sim, std::uint64_t latency_us)
      : sim_(sim), latency_us_(latency_us) {}

  std::string name() const override { return "Recording"; }

  void ClientRead(ClientId client, DatacenterId dc, Key key,
                  std::function<void()> done) override {
    reads.push_back({client, dc, key});
    sim_->ScheduleAfter(latency_us_, std::move(done));
  }
  void ClientUpdate(ClientId client, DatacenterId dc, Key key, Value value,
                    std::function<void()> done) override {
    updates.push_back({client, dc, key});
    last_value = value;
    sim_->ScheduleAfter(latency_us_, std::move(done));
  }
  geo::VisibilityTracker& tracker() override { return tracker_; }
  const geo::VisibilityTracker& tracker() const override { return tracker_; }

  struct OpInfo {
    ClientId client;
    DatacenterId dc;
    Key key;
  };
  std::vector<OpInfo> reads;
  std::vector<OpInfo> updates;
  Value last_value;

 private:
  sim::Simulator* sim_;
  std::uint64_t latency_us_;
  geo::VisibilityTracker tracker_;
};

WorkloadConfig BaseConfig() {
  WorkloadConfig config;
  config.num_keys = 1000;
  config.update_fraction = 0.25;
  config.clients_per_dc = 5;
  config.duration_us = 1 * sim::kSecond;
  config.value_size = 100;
  return config;
}

TEST(WorkloadDriverTest, RespectsUpdateFraction) {
  sim::Simulator sim(1);
  RecordingSystem system(&sim, 500);
  WorkloadDriver driver(&sim, &system, BaseConfig(), 3);
  driver.Start();
  sim.RunUntil(BaseConfig().duration_us);
  const double total =
      static_cast<double>(system.reads.size() + system.updates.size());
  ASSERT_GT(total, 1000);
  const double fraction = static_cast<double>(system.updates.size()) / total;
  EXPECT_NEAR(fraction, 0.25, 0.03);
}

TEST(WorkloadDriverTest, ClosedLoopIssuesSequentially) {
  // With latency L and C clients, a closed loop issues ~C * T/L ops.
  sim::Simulator sim(2);
  RecordingSystem system(&sim, 1000);  // 1 ms per op
  auto config = BaseConfig();
  config.clients_per_dc = 2;  // 6 clients total
  WorkloadDriver driver(&sim, &system, config, 3);
  driver.Start();
  sim.RunUntil(config.duration_us);
  const std::size_t total = system.reads.size() + system.updates.size();
  EXPECT_NEAR(static_cast<double>(total), 6000.0, 120.0);
}

TEST(WorkloadDriverTest, ThinkTimeSlowsClients) {
  sim::Simulator sim(3);
  RecordingSystem system(&sim, 1000);
  auto config = BaseConfig();
  config.clients_per_dc = 2;
  config.think_time_us = 1000;  // doubles the per-op cycle
  WorkloadDriver driver(&sim, &system, config, 3);
  driver.Start();
  sim.RunUntil(config.duration_us);
  const std::size_t total = system.reads.size() + system.updates.size();
  EXPECT_NEAR(static_cast<double>(total), 3000.0, 100.0);
}

TEST(WorkloadDriverTest, ClientsSpreadAcrossDatacenters) {
  sim::Simulator sim(4);
  RecordingSystem system(&sim, 500);
  WorkloadDriver driver(&sim, &system, BaseConfig(), 3);
  driver.Start();
  sim.RunUntil(BaseConfig().duration_us);
  std::map<DatacenterId, int> per_dc;
  for (const auto& op : system.reads) {
    ++per_dc[op.dc];
  }
  EXPECT_EQ(per_dc.size(), 3u);
}

TEST(WorkloadDriverTest, UniformKeysCoverSpace) {
  sim::Simulator sim(5);
  RecordingSystem system(&sim, 100);
  auto config = BaseConfig();
  config.num_keys = 50;
  WorkloadDriver driver(&sim, &system, config, 3);
  driver.Start();
  sim.RunUntil(config.duration_us);
  std::map<Key, int> counts;
  for (const auto& op : system.reads) {
    ++counts[op.key];
  }
  EXPECT_EQ(counts.size(), 50u);  // every key touched
}

TEST(WorkloadDriverTest, ZipfSkewsKeyPopularity) {
  sim::Simulator sim(6);
  RecordingSystem system(&sim, 100);
  auto config = BaseConfig();
  config.distribution = KeyDistribution::kZipf;
  config.num_keys = 10000;
  WorkloadDriver driver(&sim, &system, config, 3);
  driver.Start();
  sim.RunUntil(config.duration_us);
  std::map<Key, int> counts;
  std::size_t total = 0;
  for (const auto& op : system.reads) {
    ++counts[op.key];
    ++total;
  }
  for (const auto& op : system.updates) {
    ++counts[op.key];
    ++total;
  }
  // The single hottest key must hold far more than the uniform share.
  int hottest = 0;
  for (const auto& [key, count] : counts) {
    hottest = std::max(hottest, count);
  }
  EXPECT_GT(hottest, static_cast<int>(total / 10000 * 20));
}

TEST(WorkloadDriverTest, ValuesHaveConfiguredSize) {
  sim::Simulator sim(7);
  RecordingSystem system(&sim, 100);
  auto config = BaseConfig();
  config.update_fraction = 1.0;
  config.value_size = 100;  // the paper's 100-byte values
  WorkloadDriver driver(&sim, &system, config, 3);
  driver.Start();
  sim.RunUntil(10'000);
  ASSERT_FALSE(system.updates.empty());
  EXPECT_EQ(system.last_value.size(), 100u);
}

TEST(WorkloadDriverTest, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Simulator sim(9);
    RecordingSystem system(&sim, 500);
    WorkloadDriver driver(&sim, &system, BaseConfig(), 3);
    driver.Start();
    sim.RunUntil(200'000);
    std::vector<Key> keys;
    for (const auto& op : system.reads) {
      keys.push_back(op.key);
    }
    return keys;
  };
  EXPECT_EQ(run(), run());
}

TEST(WorkloadDriverTest, StopCeasesIssuing) {
  sim::Simulator sim(10);
  RecordingSystem system(&sim, 500);
  WorkloadDriver driver(&sim, &system, BaseConfig(), 3);
  driver.Start();
  sim.RunUntil(100'000);
  driver.Stop();
  const std::size_t at_stop = system.reads.size() + system.updates.size();
  sim.RunUntil(500'000);
  const std::size_t after = system.reads.size() + system.updates.size();
  EXPECT_EQ(after, at_stop);
}

TEST(MixLabelTest, FormatsLikeThePaper) {
  WorkloadConfig config;
  config.update_fraction = 0.10;
  EXPECT_EQ(MixLabel(config), "90:10 U");
  config.distribution = KeyDistribution::kZipf;
  config.update_fraction = 0.5;
  EXPECT_EQ(MixLabel(config), "50:50 P");
}

}  // namespace
}  // namespace eunomia::wl
