// Tests for the harness utilities (table rendering, experiment runner) and
// the sequencer geo-system specifics (in-order shipping, straggler hook).
#include <gtest/gtest.h>

#include "src/harness/geo_experiment.h"
#include "src/harness/table.h"
#include "src/sequencer/seq_system.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

TEST(TableTest, NumAndPctFormatting) {
  EXPECT_EQ(harness::Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(harness::Table::Num(1000, 0), "1000");
  EXPECT_EQ(harness::Table::Pct(-4.7), "-4.7%");
  EXPECT_EQ(harness::Table::Pct(12.34, 2), "+12.34%");
}

TEST(TableTest, RowsPadToHeaderWidth) {
  harness::Table table({"a", "b", "c"});
  table.AddRow({"1"});  // short row must not crash printing
  table.AddRow({"1", "2", "3"});
  table.Print();     // smoke: alignment handles missing cells
  table.PrintCsv();  // and CSV mode
}

TEST(SystemNameTest, AllKindsNamed) {
  using harness::SystemKind;
  EXPECT_EQ(harness::SystemName(SystemKind::kEventual), "Eventual");
  EXPECT_EQ(harness::SystemName(SystemKind::kEunomiaKv), "EunomiaKV");
  EXPECT_EQ(harness::SystemName(SystemKind::kGentleRain), "GentleRain");
  EXPECT_EQ(harness::SystemName(SystemKind::kCure), "Cure");
  EXPECT_EQ(harness::SystemName(SystemKind::kSSeq), "S-Seq");
  EXPECT_EQ(harness::SystemName(SystemKind::kASeq), "A-Seq");
}

TEST(GeoExperimentTest, RunProducesConsistentResult) {
  geo::GeoConfig config;
  config.num_dcs = 3;
  config.partitions_per_dc = 4;
  config.servers_per_dc = 2;
  wl::WorkloadConfig workload;
  workload.num_keys = 500;
  workload.update_fraction = 0.2;
  workload.clients_per_dc = 4;
  workload.duration_us = 3 * sim::kSecond;
  workload.warmup_us = 500 * sim::kMillisecond;
  workload.cooldown_us = 500 * sim::kMillisecond;

  const auto result =
      harness::RunGeoExperiment(harness::SystemKind::kEunomiaKv, config, workload);
  EXPECT_EQ(result.system, "EunomiaKV");
  EXPECT_GT(result.throughput_ops_s, 100.0);
  EXPECT_GT(result.reads, result.updates);  // 80:20 mix
  EXPECT_GE(result.vis_p90_ms, 0.0);
  EXPECT_GE(result.vis_p95_ms, result.vis_p90_ms);
  EXPECT_GE(result.vis_p99_ms, result.vis_p95_ms);
}

TEST(GeoExperimentTest, DeterministicAcrossRuns) {
  geo::GeoConfig config;
  config.partitions_per_dc = 4;
  config.servers_per_dc = 2;
  wl::WorkloadConfig workload;
  workload.clients_per_dc = 4;
  workload.duration_us = 2 * sim::kSecond;
  workload.warmup_us = 200'000;
  workload.cooldown_us = 200'000;
  const auto a =
      harness::RunGeoExperiment(harness::SystemKind::kEunomiaKv, config, workload);
  const auto b =
      harness::RunGeoExperiment(harness::SystemKind::kEunomiaKv, config, workload);
  EXPECT_DOUBLE_EQ(a.throughput_ops_s, b.throughput_ops_s);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_DOUBLE_EQ(a.vis_p95_ms, b.vis_p95_ms);
}

// S-Seq ships updates through the sequencer in grant order, so visibility at
// a remote receiver is FIFO in sequence numbers even when partitions finish
// storing out of order.
TEST(SeqSystemTest, RemoteVisibilityFollowsSequenceOrder) {
  geo::GeoConfig config;
  config.partitions_per_dc = 4;
  config.servers_per_dc = 2;
  sim::Simulator sim(33);
  geo::SeqSystem system(&sim, config, geo::SeqSystem::Mode::kSynchronous);
  system.tracker().EnableDetailedLog();

  // Two independent clients race updates to different partitions.
  int completed = 0;
  for (int i = 0; i < 12; ++i) {
    system.ClientUpdate(static_cast<ClientId>(i + 1), 0,
                        static_cast<Key>(i * 7 + 1), "v", [&] { ++completed; });
  }
  sim.RunUntil(4 * sim::kSecond);
  ASSERT_EQ(completed, 12);
  // All visible at dc1 (uids assigned in sequencer-grant order).
  std::optional<std::uint64_t> prev;
  for (std::uint64_t uid = 0; uid < 12; ++uid) {
    const auto t = system.tracker().VisibleAt(uid, 1);
    ASSERT_TRUE(t.has_value()) << "uid " << uid;
    if (prev) {
      EXPECT_GE(*t, *prev) << "sequencer shipping order violated";
    }
    prev = t;
  }
}

TEST(SeqSystemTest, StragglerHookDelaysOnlyThatPartitionsUpdates) {
  geo::GeoConfig config;
  config.partitions_per_dc = 4;
  config.servers_per_dc = 2;
  sim::Simulator sim(34);
  geo::SeqSystem system(&sim, config, geo::SeqSystem::Mode::kSynchronous);
  system.SetPartitionSequencerDelay(0, 0, 50 * sim::kMillisecond);

  // Find keys owned by partition 0 and by some other partition.
  store::ConsistentHashRing router(config.partitions_per_dc);
  Key slow_key = 0;
  Key fast_key = 0;
  for (Key k = 1; k < 1000 && (slow_key == 0 || fast_key == 0); ++k) {
    if (router.Responsible(k) == 0 && slow_key == 0) {
      slow_key = k;
    } else if (router.Responsible(k) != 0 && fast_key == 0) {
      fast_key = k;
    }
  }
  std::uint64_t slow_latency = 0;
  std::uint64_t fast_latency = 0;
  const std::uint64_t start = sim.now();
  system.ClientUpdate(1, 0, slow_key, "v", [&] { slow_latency = sim.now() - start; });
  system.ClientUpdate(2, 0, fast_key, "v", [&] { fast_latency = sim.now() - start; });
  sim.RunUntil(sim::kSecond);
  EXPECT_GT(slow_latency, 50 * sim::kMillisecond)
      << "the straggling partition's clients pay the interval";
  EXPECT_LT(fast_latency, 20 * sim::kMillisecond)
      << "healthy partitions' clients are unaffected";
}

}  // namespace
}  // namespace eunomia
