// nemesis_sweep — the chaos harness driver (ROADMAP item 3).
//
// Part 1 (simulated): runs hundreds of randomized nemesis schedules —
// each seed derives a deployment, a fault profile, timed fault windows and
// a closed-loop workload (src/georep/runtime/chaos/) — and checks the four
// invariants after every schedule: store convergence, causal delivery
// order, read-your-writes, bounded stable-frontier staleness. On any
// violation the exact seed is reprinted: `nemesis_sweep --seed=N` replays
// the identical schedule bit-for-bit.
//
// `--plant=drop-payload|reorder-metadata|drop-metadata` injects a
// deliberate protocol-breaking bug; with `--expect-violation` the sweep
// asserts the bug IS caught and that the first catching seed reproduces
// the violation deterministically (identical digests across two re-runs) —
// proof the harness has teeth.
//
// Part 2 (real TCP, skip with --no-tcp): the highest-value scenario on the
// real GeoNode binding — peer death with total state loss, background
// reconnect with capped backoff, history-replay catch-up — while an
// availability probe at the surviving datacenter measures unavailability
// windows (completion gaps), emitted fig4-style into BENCH_nemesis.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>
#include "src/common/sync.h"

#include "bench/flags.h"
#include "src/georep/geo_store.h"
#include "src/georep/runtime/chaos/nemesis.h"
#include "src/georep/runtime/geo_node.h"
#include "src/metrics/metrics_server.h"
#include "src/metrics/registry.h"
#include "src/net/tcp_transport.h"

namespace eunomia {
namespace {

namespace chaos = geo::rt::chaos;

bool ParsePlant(const std::string& name, chaos::Plant* plant) {
  if (name == "none") {
    *plant = chaos::Plant::kNone;
  } else if (name == "drop-payload") {
    *plant = chaos::Plant::kDropPayload;
  } else if (name == "reorder-metadata") {
    *plant = chaos::Plant::kReorderMetadata;
  } else if (name == "drop-metadata") {
    *plant = chaos::Plant::kDropMetadata;
  } else {
    return false;
  }
  return true;
}

// --- part 1: the randomized sweep --------------------------------------------

struct SweepResult {
  std::uint64_t seeds_run = 0;
  std::uint64_t updates_acked = 0;
  std::uint64_t reads_done = 0;
  std::uint64_t crashes = 0;
  std::uint64_t payloads_dropped = 0;
  std::uint64_t plants_fired = 0;
  // Schedules that ran in durable mode (WAL+snapshot recovery with disk
  // faults instead of environment replay), and the disk faults that fired.
  std::uint64_t durable_seeds = 0;
  std::uint64_t wal_torn_tails = 0;
  std::uint64_t wal_bit_flips = 0;
  std::uint64_t snapshots_taken = 0;
  std::vector<std::uint64_t> violating_seeds;
};

SweepResult RunSweep(std::uint64_t base_seed, std::uint64_t count,
                     const chaos::NemesisOptions& proto,
                     const std::string& log_path) {
  SweepResult result;
  std::FILE* log = nullptr;
  for (std::uint64_t s = base_seed; s < base_seed + count; ++s) {
    chaos::NemesisOptions options = proto;
    options.seed = s;
    const chaos::NemesisReport report = chaos::RunNemesisSchedule(options);
    ++result.seeds_run;
    result.updates_acked += report.updates_acked;
    result.reads_done += report.reads_done;
    result.crashes += report.faults.crashes;
    result.payloads_dropped += report.faults.payloads_dropped;
    result.plants_fired += report.faults.plants_fired;
    if (report.durable) {
      ++result.durable_seeds;
      result.wal_torn_tails += report.wal_torn_tails;
      result.wal_bit_flips += report.wal_bit_flips;
      result.snapshots_taken += report.snapshots_taken;
    }
    if (!report.ok()) {
      result.violating_seeds.push_back(s);
      std::printf(
          "VIOLATION at seed %llu (%zu violations) — repro: "
          "nemesis_sweep --seed=%llu%s%s\n",
          static_cast<unsigned long long>(s), report.violations.size(),
          static_cast<unsigned long long>(s), proto.smoke ? " --smoke" : "",
          proto.plant == chaos::Plant::kNone ? "" : " --plant=...");
      std::size_t shown = 0;
      for (const chaos::Violation& v : report.violations) {
        if (shown++ == 10) {
          std::printf("  ... (%zu more; see %s)\n",
                      report.violations.size() - 10, log_path.c_str());
          break;
        }
        std::printf("  [%s] %s\n", v.invariant.c_str(), v.detail.c_str());
      }
      if (log == nullptr) {
        log = std::fopen(log_path.c_str(), "w");
      }
      if (log != nullptr) {
        for (const chaos::Violation& v : report.violations) {
          std::fprintf(log, "seed=%llu invariant=%s detail=%s\n",
                       static_cast<unsigned long long>(s),
                       v.invariant.c_str(), v.detail.c_str());
        }
      }
    }
    if ((s - base_seed + 1) % 50 == 0) {
      std::printf("... %llu/%llu seeds done, %zu violating\n",
                  static_cast<unsigned long long>(s - base_seed + 1),
                  static_cast<unsigned long long>(count),
                  result.violating_seeds.size());
    }
  }
  if (log != nullptr) {
    std::fclose(log);
    std::printf("violation log written to %s\n", log_path.c_str());
  }
  return result;
}

// The planted-bug contract: the printed seed must reproduce by itself,
// byte-for-byte — two fresh runs of the same seed yield identical digests
// (event counts, fault counters, violation list).
bool VerifyDeterministicRepro(std::uint64_t seed,
                              const chaos::NemesisOptions& proto) {
  chaos::NemesisOptions options = proto;
  options.seed = seed;
  const chaos::NemesisReport a = chaos::RunNemesisSchedule(options);
  const chaos::NemesisReport b = chaos::RunNemesisSchedule(options);
  if (a.ok()) {
    std::printf(
        "ERROR: seed %llu no longer violates when replayed alone — the "
        "repro is not deterministic\n",
        static_cast<unsigned long long>(seed));
    return false;
  }
  if (a.Digest() != b.Digest()) {
    std::printf("ERROR: seed %llu diverged across two replays:\n  %s\n  %s\n",
                static_cast<unsigned long long>(seed), a.Digest().c_str(),
                b.Digest().c_str());
    return false;
  }
  std::printf("deterministic repro confirmed for seed %llu:\n  %s\n",
              static_cast<unsigned long long>(seed), a.Digest().c_str());
  return true;
}

// --- part 2: peer death -> reconnect -> catch-up on real TCP -----------------

struct UnavailabilityWindow {
  double start_s = 0.0;
  double gap_ms = 0.0;
};

struct TcpScenarioResult {
  bool ran = false;
  bool ok = false;
  double ops_per_s = 0.0;
  std::uint64_t reconnects = 0;
  bool converged = false;
  double converge_ms = -1.0;
  std::vector<UnavailabilityWindow> windows;
};

using StoreSnapshot = std::map<Key, geo::GeoVersion>;

StoreSnapshot SnapshotStores(geo::rt::GeoNode* node,
                             std::uint32_t partitions) {
  StoreSnapshot snapshot;
  node->RunBlocking([&] {
    for (PartitionId p = 0; p < partitions; ++p) {
      node->runtime().StoreAt(p).ForEach(
          [&snapshot](Key key, const geo::GeoVersion& v) {
            snapshot[key] = v;
          });
    }
  });
  return snapshot;
}

bool SameSnapshot(const StoreSnapshot& a, const StoreSnapshot& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const auto& [key, va] : a) {
    const auto it = b.find(key);
    if (it == b.end() || it->second.value != va.value ||
        !(it->second.vts == va.vts) || it->second.origin != va.origin) {
      return false;
    }
  }
  return true;
}

TcpScenarioResult RunTcpReconnectScenario(bool smoke) {
  using geo::rt::GeoNode;
  using Clock = std::chrono::steady_clock;
  TcpScenarioResult result;
  result.ran = true;

  geo::GeoConfig config;
  config.num_dcs = 2;
  config.partitions_per_dc = 2;
  config.servers_per_dc = 1;

  // Writers live at dc0 only: dc1 is the datacenter that dies and returns
  // with nothing, so all state it must recover flows one way and the
  // catch-up is exactly dc0's retained history.
  GeoNode::Options options0;
  options0.dc = 0;
  options0.config = config;
  options0.retain_peer_history = true;
  options0.reconnect_backoff_ms = 25;
  options0.reconnect_backoff_max_ms = 200;
  // Both nodes instrumented: the post-scenario scrape (written to
  // nemesis_tcp_scrape.prom, archived by the nightly job) must show the
  // peer death in the counters — reconnects and history replay at dc0.
  options0.metrics = &metrics::Registry::Default();
  options0.metrics_interval_us = 50'000;
  GeoNode::Options options1 = options0;
  options1.dc = 1;

  const auto kill_after = std::chrono::milliseconds(smoke ? 400 : 800);
  const auto dead_for = std::chrono::milliseconds(smoke ? 500 : 1000);
  const auto tail = std::chrono::milliseconds(smoke ? 700 : 1400);
  constexpr double kGapThresholdMs = 100.0;

  std::printf(
      "\nTCP reconnect scenario: 2 GeoNodes, writers+probe at dc0; kill "
      "dc1 at t=%lldms, reboot it state-less at t=%lldms\n",
      static_cast<long long>(kill_after.count()),
      static_cast<long long>((kill_after + dead_for).count()));

  // Declared before the nodes: a GeoNode's Stop touches its transport.
  auto transport0 = std::make_unique<net::TcpTransport>();
  auto transport1 = std::make_unique<net::TcpTransport>();
  auto node0 = std::make_unique<GeoNode>(transport0.get(), options0);
  auto node1 = std::make_unique<GeoNode>(transport1.get(), options1);
  const std::string addr0 = node0->Listen("127.0.0.1:0");
  const std::string addr1 = node1->Listen("127.0.0.1:0");
  if (addr0.empty() || addr1.empty()) {
    std::printf("ERROR: could not listen\n");
    return result;
  }
  if (!node0->ConnectPeer(1, addr1) || !node1->ConnectPeer(0, addr0)) {
    std::printf("ERROR: initial peer dial failed\n");
    return result;
  }
  node0->Start();
  node1->Start();

  const auto t0 = Clock::now();
  auto now_s = [t0] {
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               Clock::now() - t0)
        .count();
  };

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writer_ops{0};
  constexpr std::uint32_t kWriters = 4;
  std::vector<std::shared_ptr<std::function<void(int)>>> issues;
  for (std::uint32_t c = 0; c < kWriters; ++c) {
    GeoNode* node = node0.get();
    auto issue = std::make_shared<std::function<void(int)>>();
    issues.push_back(issue);
    *issue = [node, c, issue, &stop, &writer_ops](int i) {
      if (stop.load(std::memory_order_relaxed)) {
        return;
      }
      writer_ops.fetch_add(1, std::memory_order_relaxed);
      const Key key = static_cast<Key>(c) * 1000 + static_cast<Key>(i % 64);
      node->ClientUpdate(100 + c, key, "v" + std::to_string(i),
                         [issue, i] { (*issue)(i + 1); });
    };
    (*issue)(0);
  }

  // The availability probe: a closed-loop reader whose completion
  // timestamps expose any window where dc0 stopped serving — EunomiaKV's
  // claim is that a remote datacenter dying leaves local availability
  // untouched.
  eunomia::sync::Mutex probe_mu{"nemesis_sweep::probe_mu", eunomia::sync::kRankLeaf};
  std::vector<double> probe_times_s;
  auto probe = std::make_shared<std::function<void()>>();
  {
    GeoNode* node = node0.get();
    *probe = [node, probe, &stop, &probe_mu, &probe_times_s, now_s] {
      if (stop.load(std::memory_order_relaxed)) {
        return;
      }
      node->ClientRead(999, 0, [probe, &probe_mu, &probe_times_s, now_s] {
        {
          eunomia::sync::MutexLock lock(probe_mu);
          probe_times_s.push_back(now_s());
        }
        (*probe)();
      });
    };
    (*probe)();
  }

  // The writer and probe chains are self-referential (each function
  // captures the shared_ptr that owns it) and terminate only by observing
  // `stop`, so the cycles must be broken by hand — and only once the
  // nodes' threads are joined, or an in-flight completion would invoke a
  // cleared std::function.
  auto teardown = [&] {
    node1.reset();
    node0.reset();
    transport1.reset();
    transport0.reset();
    for (auto& issue : issues) {
      *issue = nullptr;
    }
    *probe = nullptr;
  };

  std::this_thread::sleep_for(kill_after);
  // Peer death with total state loss: everything dc1 held is gone.
  node1.reset();
  transport1.reset();

  std::this_thread::sleep_for(dead_for);
  // Reboot dc1 on the same address (fresh transport, fresh empty runtime).
  // dc0's background re-dial loop finds it and replays its full history.
  transport1 = std::make_unique<net::TcpTransport>();
  node1 = std::make_unique<GeoNode>(transport1.get(), options1);
  if (node1->Listen(addr1).empty()) {
    std::printf("ERROR: dc1 could not rebind %s after restart\n",
                addr1.c_str());
    stop.store(true);
    return result;
  }
  if (!node1->ConnectPeer(0, addr0)) {
    std::printf("ERROR: rebooted dc1 could not dial dc0\n");
    stop.store(true);
    teardown();
    return result;
  }
  node1->Start();

  std::this_thread::sleep_for(tail);
  stop.store(true);
  const double elapsed_s = now_s();
  result.ops_per_s =
      static_cast<double>(writer_ops.load()) / std::max(elapsed_s, 1e-9);
  result.reconnects = node0->reconnects();

  // Catch-up: poll until dc1's merged store equals dc0's (only dc0 writes,
  // so dc0's own store is the oracle). The oracle is re-snapshotted each
  // poll — writer ops still in flight at stop time drain through dc0's
  // event loop after this point, so freezing it once would race them.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  StoreSnapshot expected;
  const double converge_start_s = now_s();
  const auto deadline = Clock::now() + std::chrono::seconds(8);
  while (Clock::now() < deadline) {
    expected = SnapshotStores(node0.get(), config.partitions_per_dc);
    if (!expected.empty() &&
        SameSnapshot(expected,
                     SnapshotStores(node1.get(), config.partitions_per_dc))) {
      result.converged = true;
      result.converge_ms = (now_s() - converge_start_s) * 1000.0;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  {
    eunomia::sync::MutexLock lock(probe_mu);
    double prev = 0.0;
    for (const double t : probe_times_s) {
      const double gap_ms = (t - prev) * 1000.0;
      if (gap_ms > kGapThresholdMs) {
        result.windows.push_back({prev, gap_ms});
      }
      prev = t;
    }
  }

  // Scrape the still-live nodes before teardown: the nightly job archives
  // this exposition, which shows the peer death in counter form (dc0's
  // reconnect + history replay, dc1's reinstalled updates).
  {
    metrics::MetricsServer metrics_server;
    const std::string metrics_address = metrics_server.Start("127.0.0.1:0");
    std::string scrape;
    if (!metrics_address.empty() &&
        metrics::HttpGet(metrics_address, "/metrics", &scrape)) {
      if (std::FILE* f = std::fopen("nemesis_tcp_scrape.prom", "w")) {
        std::fwrite(scrape.data(), 1, scrape.size(), f);
        std::fclose(f);
        std::printf(
            "wrote nemesis_tcp_scrape.prom (%zu bytes; georep "
            "reconnects=%.0f, replayed frames=%.0f)\n",
            scrape.size(),
            metrics::SeriesSum(scrape, "eunomia_georep_reconnects_total"),
            metrics::SeriesSum(scrape,
                               "eunomia_georep_replayed_frames_total"));
      }
    }
  }

  result.ok = result.converged && result.reconnects >= 1;
  std::printf(
      "dc0: %.0f writer ops/s, %llu reconnect(s); dc1 %s after reboot "
      "(%zu keys%s); %zu unavailability window(s) > %.0fms at dc0\n",
      result.ops_per_s, static_cast<unsigned long long>(result.reconnects),
      result.converged ? "converged" : "DID NOT CONVERGE", expected.size(),
      result.converged
          ? (", " + std::to_string(static_cast<long long>(result.converge_ms)) +
             "ms after writers stopped")
                .c_str()
          : "",
      result.windows.size(), kGapThresholdMs);
  for (const UnavailabilityWindow& w : result.windows) {
    std::printf("  unavailable %.0fms starting at t=%.2fs\n", w.gap_ms,
                w.start_s);
  }
  if (!result.ok) {
    std::printf("ERROR: TCP reconnect scenario failed (reconnects=%llu, "
                "converged=%d)\n",
                static_cast<unsigned long long>(result.reconnects),
                result.converged ? 1 : 0);
  }
  teardown();
  return result;
}

// --- JSON --------------------------------------------------------------------

void WriteBenchJson(const char* path, bool smoke, const SweepResult& sweep,
                    double sweep_wall_s, const TcpScenarioResult& tcp) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"figure\": \"nemesis_sweep\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"series\": [\n");
  const double sweep_rate =
      static_cast<double>(sweep.updates_acked + sweep.reads_done) /
      std::max(sweep_wall_s, 1e-9);
  std::fprintf(f,
               "    {\"system\": \"EunomiaKV\", \"workload\": "
               "\"nemesis-sweep\", \"transport\": \"sim\", \"ops_per_s\": "
               "%.1f, \"seeds\": %llu, \"violating_seeds\": %zu, "
               "\"updates_acked\": %llu, \"crashes\": %llu, "
               "\"payloads_dropped\": %llu, \"durable_seeds\": %llu, "
               "\"wal_torn_tails\": %llu, \"wal_bit_flips\": %llu, "
               "\"snapshots\": %llu}%s\n",
               sweep_rate, static_cast<unsigned long long>(sweep.seeds_run),
               sweep.violating_seeds.size(),
               static_cast<unsigned long long>(sweep.updates_acked),
               static_cast<unsigned long long>(sweep.crashes),
               static_cast<unsigned long long>(sweep.payloads_dropped),
               static_cast<unsigned long long>(sweep.durable_seeds),
               static_cast<unsigned long long>(sweep.wal_torn_tails),
               static_cast<unsigned long long>(sweep.wal_bit_flips),
               static_cast<unsigned long long>(sweep.snapshots_taken),
               tcp.ran ? "," : "");
  if (tcp.ran) {
    double max_gap_ms = 0.0;
    for (const UnavailabilityWindow& w : tcp.windows) {
      max_gap_ms = std::max(max_gap_ms, w.gap_ms);
    }
    std::fprintf(f,
                 "    {\"system\": \"EunomiaKV\", \"workload\": "
                 "\"peer-death-reconnect\", \"transport\": \"tcp\", "
                 "\"ops_per_s\": %.1f, \"reconnects\": %llu, \"converged\": "
                 "%d, \"converge_ms\": %.0f, \"unavail_windows\": %zu, "
                 "\"max_gap_ms\": %.1f}%s\n",
                 tcp.ops_per_s,
                 static_cast<unsigned long long>(tcp.reconnects),
                 tcp.converged ? 1 : 0, tcp.converge_ms, tcp.windows.size(),
                 max_gap_ms, tcp.windows.empty() ? "" : ",");
    for (std::size_t i = 0; i < tcp.windows.size(); ++i) {
      std::fprintf(f,
                   "    {\"system\": \"EunomiaKV\", \"workload\": "
                   "\"unavail t=%.2fs\", \"transport\": \"tcp\", "
                   "\"ops_per_s\": 0.0, \"gap_ms\": %.1f}%s\n",
                   tcp.windows[i].start_s, tcp.windows[i].gap_ms,
                   i + 1 < tcp.windows.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

int Run(const bench::Flags& flags) {
  const bool smoke = flags.smoke();
  chaos::Plant plant = chaos::Plant::kNone;
  if (!ParsePlant(flags.Get("plant", "none"), &plant)) {
    std::fprintf(stderr,
                 "bad --plant (use none, drop-payload, reorder-metadata or "
                 "drop-metadata)\n");
    return 2;
  }
  const std::uint64_t base_seed = flags.GetUint("seed", 1);
  const std::uint64_t count =
      flags.GetUint("seeds", flags.Has("seed") ? 1 : 200);
  const bool expect_violation = flags.Has("expect-violation");
  const bool no_tcp = flags.Has("no-tcp");
  const std::string log_path = flags.Get("log", "nemesis_violations.log");

  chaos::NemesisOptions proto;
  proto.smoke = smoke;
  proto.plant = plant;
  const std::string durability = flags.Get("durability", "draw");
  if (durability == "draw") {
    proto.durability = -1;
  } else if (durability == "off") {
    proto.durability = 0;
  } else if (durability == "on") {
    proto.durability = 1;
  } else {
    std::fprintf(stderr, "bad --durability (use draw, off or on)\n");
    return 2;
  }

  std::printf(
      "nemesis sweep: %llu schedule(s) from seed %llu (%s mode, plant=%s)\n"
      "invariants per schedule: convergence, causal order, read-your-writes, "
      "bounded staleness\n",
      static_cast<unsigned long long>(count),
      static_cast<unsigned long long>(base_seed), smoke ? "smoke" : "full",
      flags.Get("plant", "none").c_str());

  const auto sweep_start = std::chrono::steady_clock::now();
  const SweepResult sweep = RunSweep(base_seed, count, proto, log_path);
  const double sweep_wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - sweep_start)
          .count();
  std::printf(
      "\n%llu seed(s) in %.1fs: %llu updates acked, %llu reads, %llu "
      "crashes, %llu payloads dropped+reshipped, %llu plants fired, "
      "%zu violating seed(s)\n"
      "%llu durable seed(s): %llu snapshot(s), %llu torn tail(s), %llu "
      "bit flip(s) injected on recovery disks\n",
      static_cast<unsigned long long>(sweep.seeds_run), sweep_wall_s,
      static_cast<unsigned long long>(sweep.updates_acked),
      static_cast<unsigned long long>(sweep.reads_done),
      static_cast<unsigned long long>(sweep.crashes),
      static_cast<unsigned long long>(sweep.payloads_dropped),
      static_cast<unsigned long long>(sweep.plants_fired),
      sweep.violating_seeds.size(),
      static_cast<unsigned long long>(sweep.durable_seeds),
      static_cast<unsigned long long>(sweep.snapshots_taken),
      static_cast<unsigned long long>(sweep.wal_torn_tails),
      static_cast<unsigned long long>(sweep.wal_bit_flips));

  bool ok = true;
  if (expect_violation) {
    if (sweep.violating_seeds.empty()) {
      std::printf(
          "ERROR: a bug was planted but no seed caught it — the harness "
          "has no teeth\n");
      ok = false;
    } else {
      ok = VerifyDeterministicRepro(sweep.violating_seeds.front(), proto);
    }
  } else if (!sweep.violating_seeds.empty()) {
    ok = false;
  }

  TcpScenarioResult tcp;
  if (!no_tcp) {
    tcp = RunTcpReconnectScenario(smoke);
    ok = ok && tcp.ok;
  }
  WriteBenchJson("BENCH_nemesis.json", smoke, sweep, sweep_wall_s, tcp);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  eunomia::bench::Flags flags(
      argc, argv,
      {"seeds", "seed", "smoke", "plant", "expect-violation", "no-tcp", "log",
       "durability"});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  return eunomia::Run(flags);
}
