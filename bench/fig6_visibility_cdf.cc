// Figure 6 — CDFs of remote update visibility latency.
//
// "Left: from dc1 to dc2 (40ms trip-time). Right: from dc2 to dc3 (80ms
// trip-time)." All values factor out the network latency (identical for all
// protocols): they are the *artificial* delays added by each metadata
// management scheme, measured from the arrival of the update at the remote
// datacenter to the moment it is allowed to become visible.
//
// Expected shape (paper §7.2.2):
//   - dc0 -> dc1 (left): EunomiaKV by far the best (95% of updates within
//     ~15 ms added delay, some with ~0); Cure next (~45 ms at 95%);
//     GentleRain worst (~80 ms at 95%) and structurally unable to go below
//     ~40 ms — the single scalar ties visibility to the *farthest*
//     datacenter (160 ms RTT / 2 - 40 ms travel = 40 ms floor).
//   - dc1 -> dc2 (right): the 80 ms leg is already the farthest, so
//     GentleRain's floor disappears and it beats Cure (whose vector
//     machinery costs more), but EunomiaKV still wins.
#include <cstdio>
#include <vector>

#include "bench/flags.h"
#include "src/harness/geo_experiment.h"
#include "src/harness/table.h"
#include "src/metrics/histogram.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

using harness::MakeSystem;
using harness::SystemKind;
using harness::Table;

// The CDFs come from the tracker's exported visibility histograms — the
// same series a live node scrapes as eunomia_georep_visibility_latency_
// microseconds — so the figure and a production dashboard read one stream.
// Log-linear buckets quantize quantiles to ~2% relative error, invisible at
// the figure's millisecond scale.
struct SystemCdfs {
  std::string name;
  metrics::Histogram::Snapshot left;   // dc0 -> dc1
  metrics::Histogram::Snapshot right;  // dc1 -> dc2
};

metrics::Histogram::Snapshot SnapPair(const geo::VisibilityTracker& tracker,
                                      DatacenterId origin, DatacenterId dest) {
  const metrics::Histogram* hist = tracker.VisibilityHistogram(origin, dest);
  return hist != nullptr ? hist->Snap() : metrics::Histogram::Snapshot{};
}

// Machine-readable companion of the printed tables (same JSON shape as
// BENCH_fig2.json / BENCH_fig5.json): per system x WAN leg, the visibility
// percentiles CI archives to track the trajectory.
void WriteBenchJson(bool smoke, const std::vector<SystemCdfs>& cdfs) {
  std::FILE* f = std::fopen("BENCH_fig6.json", "w");
  if (f == nullptr) {
    std::printf("WARNING: could not write BENCH_fig6.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"figure\": \"fig6_visibility_cdf\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"series\": [\n");
  bool first = true;
  for (const auto& entry : cdfs) {
    for (const bool right : {false, true}) {
      const metrics::Histogram::Snapshot& cdf = right ? entry.right : entry.left;
      if (cdf.count == 0) {
        continue;
      }
      if (!first) {
        std::fprintf(f, ",\n");
      }
      first = false;
      std::fprintf(
          f,
          "    {\"system\": \"%s\", \"pair\": \"%s\", "
          "\"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f}",
          entry.name.c_str(), right ? "dc1->dc2" : "dc0->dc1",
          static_cast<double>(cdf.Quantile(0.50)) / 1000.0,
          static_cast<double>(cdf.Quantile(0.95)) / 1000.0,
          static_cast<double>(cdf.Quantile(0.99)) / 1000.0);
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_fig6.json\n");
}

void Run(bool smoke) {
  harness::PrintBanner(
      "Figure 6: CDF of remote update visibility latency (added delay, ms)",
      "left: dc0->dc1 (40ms one-way) / right: dc1->dc2 (80ms one-way); "
      "network latency factored out");

  wl::WorkloadConfig workload;
  workload.num_keys = smoke ? 5'000 : 100'000;
  workload.update_fraction = 0.10;  // 90:10, the paper's default mix
  workload.clients_per_dc = smoke ? 8 : 24;
  workload.duration_us = (smoke ? 4 : 20) * sim::kSecond;
  workload.warmup_us = (smoke ? 1 : 4) * sim::kSecond;
  workload.cooldown_us = (smoke ? 1 : 2) * sim::kSecond;

  geo::GeoConfig config;
  const std::vector<SystemKind> systems = {
      SystemKind::kEunomiaKv, SystemKind::kGentleRain, SystemKind::kCure};

  std::vector<SystemCdfs> cdfs;
  for (const SystemKind kind : systems) {
    auto sut = MakeSystem(kind, config, workload.seed);
    wl::WorkloadDriver driver(sut.sim.get(), sut.system.get(), workload,
                              config.num_dcs);
    driver.Start();
    sut.sim->RunUntil(workload.duration_us);
    driver.Stop();
    sut.sim->RunUntil(workload.duration_us + 2 * sim::kSecond);
    SystemCdfs entry;
    entry.name = harness::SystemName(kind);
    // Snapshots are self-contained merges — the system can die here.
    entry.left = SnapPair(sut.system->tracker(), 0, 1);
    entry.right = SnapPair(sut.system->tracker(), 1, 2);
    cdfs.push_back(std::move(entry));
  }

  for (const bool right : {false, true}) {
    std::printf("\n--- %s ---\n",
                right ? "dc1 -> dc2 (80 ms one-way; farthest leg)"
                      : "dc0 -> dc1 (40 ms one-way)");
    Table table({"percentile", cdfs[0].name, cdfs[1].name, cdfs[2].name});
    for (const double q :
         {0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99}) {
      std::vector<std::string> row = {Table::Num(q * 100, 0) + "%"};
      for (const auto& entry : cdfs) {
        const metrics::Histogram::Snapshot& cdf =
            right ? entry.right : entry.left;
        row.push_back(
            cdf.count != 0
                ? Table::Num(static_cast<double>(cdf.Quantile(q)) / 1000.0, 1)
                : "-");
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  // Headline numbers from the paper's discussion.
  const auto at = [](const metrics::Histogram::Snapshot& cdf, double q) {
    return cdf.count != 0 ? static_cast<double>(cdf.Quantile(q)) / 1000.0
                          : -1.0;
  };
  std::printf(
      "\npaper reference points (dc0->dc1): EunomiaKV ~15 ms @95%%, Cure ~45 "
      "ms @95%%, GentleRain ~80 ms @95%% with a ~40 ms floor\n");
  std::printf("measured  @95%%: EunomiaKV %.1f ms, Cure %.1f ms, GentleRain %.1f ms\n",
              at(cdfs[0].left, 0.95), at(cdfs[2].left, 0.95), at(cdfs[1].left, 0.95));
  std::printf("measured  @5%% (floor): EunomiaKV %.1f ms, Cure %.1f ms, GentleRain %.1f ms\n",
              at(cdfs[0].left, 0.05), at(cdfs[2].left, 0.05), at(cdfs[1].left, 0.05));
  WriteBenchJson(smoke, cdfs);
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  eunomia::bench::Flags flags(argc, argv, {"smoke"});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  eunomia::Run(flags.smoke());
  return 0;
}
