// Shared load-generation helpers for the native-service benchmarks
// (Figs. 2, 3, 4 — §7.1 of the paper).
//
// "In order to stretch as much as possible the implementation, we directly
// connect clients to Eunomia, bypassing the data store. Thus, each client
// simulates a different partition in a multi-server datacenter." Each
// producer thread here plays one partition: it tags ops with a hybrid clock,
// batches them locally for ~1 ms (the paper's batching interval) and pushes
// the batch to the service; idle gaps are covered by heartbeats.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/clock/hybrid_clock.h"
#include "src/eunomia/op.h"
#include "src/eunomia/service.h"
#include "src/sequencer/sequencer_service.h"

namespace eunomia::bench {

inline std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ProducerOptions {
  std::uint32_t num_partitions = 15;
  std::uint64_t duration_us = 3'000'000;
  std::uint64_t batch_interval_us = 1000;  // the paper's 1 ms batching
  // Per-producer offered load cap (ops per batch interval). Keeps memory
  // bounded while still far exceeding what the stabilizer can absorb once
  // enough partitions are attached — the plateau is the service's capacity.
  std::uint64_t ops_per_batch = 2000;
};

// Generic service concept: SubmitBatch(partition, vector<OpRecord>) and
// Heartbeat(partition, ts).
template <typename Service>
std::uint64_t DriveProducers(Service& service, const ProducerOptions& options) {
  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> producers;
  producers.reserve(options.num_partitions);
  const std::uint64_t deadline = NowMicros() + options.duration_us;
  for (std::uint32_t p = 0; p < options.num_partitions; ++p) {
    producers.emplace_back([&service, &options, &submitted, deadline, p] {
      HybridClock clock;
      std::vector<OpRecord> batch;
      batch.reserve(options.ops_per_batch);
      while (NowMicros() < deadline) {
        batch.clear();
        for (std::uint64_t i = 0; i < options.ops_per_batch; ++i) {
          batch.push_back(OpRecord{clock.TimestampUpdate(NowMicros(), 0),
                                   static_cast<PartitionId>(p), 0, 0});
        }
        submitted.fetch_add(batch.size(), std::memory_order_relaxed);
        service.SubmitBatch(static_cast<PartitionId>(p), batch);
        std::this_thread::sleep_for(
            std::chrono::microseconds(options.batch_interval_us));
      }
      // Final heartbeat far in the future lets the backlog stabilize.
      service.Heartbeat(static_cast<PartitionId>(p),
                        clock.max_ts() + 3'600'000'000ULL);
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  return submitted.load();
}

// Sequencer load: each client thread issues blocking Next() calls flat out.
template <typename Sequencer>
std::uint64_t DriveSequencerClients(Sequencer& sequencer, std::uint32_t clients,
                                    std::uint64_t duration_us) {
  std::atomic<std::uint64_t> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const std::uint64_t deadline = NowMicros() + duration_us;
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&sequencer, &granted, deadline] {
      std::uint64_t local = 0;
      while (NowMicros() < deadline) {
        sequencer.Next();
        ++local;
      }
      granted.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  return granted.load();
}

}  // namespace eunomia::bench
