// Shared load-generation helpers for the native-service benchmarks
// (Figs. 2, 3, 4 — §7.1 of the paper).
//
// "In order to stretch as much as possible the implementation, we directly
// connect clients to Eunomia, bypassing the data store. Thus, each client
// simulates a different partition in a multi-server datacenter." Each
// producer thread here plays one partition: it tags ops with a hybrid clock,
// batches them locally for ~1 ms (the paper's batching interval) and pushes
// the batch to the service; idle gaps are covered by heartbeats.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/clock/hybrid_clock.h"
#include "src/eunomia/op.h"
#include "src/eunomia/service.h"
#include "src/sequencer/sequencer_service.h"

namespace eunomia::bench {

inline std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ProducerOptions {
  std::uint32_t num_partitions = 15;
  std::uint64_t duration_us = 3'000'000;
  std::uint64_t batch_interval_us = 1000;  // the paper's 1 ms batching
  // Per-producer offered load cap (ops per batch interval). Keeps memory
  // bounded while still far exceeding what the stabilizer can absorb once
  // enough partitions are attached — the plateau is the service's capacity.
  std::uint64_t ops_per_batch = 2000;
};

// One partition's producer body, shared by the time-bounded and the
// count-bounded drivers: hybrid-clock-timestamped batches of up to
// ops_per_batch until either bound trips (pass kTimestampMax / a huge
// deadline for "unbounded"), an optional sleep between batches, then a
// far-future heartbeat so the backlog can stabilize. Returns ops submitted.
template <typename Service>
std::uint64_t ProducePartitionLoad(Service& service, PartitionId p,
                                   std::uint64_t ops_per_batch,
                                   std::uint64_t batch_interval_us,
                                   std::uint64_t max_ops,
                                   std::uint64_t deadline_us) {
  HybridClock clock;
  std::uint64_t produced = 0;
  while (produced < max_ops && NowMicros() < deadline_us) {
    // EunomiaService recycles drained batch vectors through a free-list;
    // take one back (capacity intact) instead of allocating per interval.
    // Services without a pool (the FT fan-out) fall back to a fresh vector.
    std::vector<OpRecord> batch;
    if constexpr (requires { service.AcquireBatchBuffer(); }) {
      batch = service.AcquireBatchBuffer();
    }
    batch.reserve(ops_per_batch);
    const std::uint64_t n = std::min(ops_per_batch, max_ops - produced);
    for (std::uint64_t i = 0; i < n; ++i) {
      batch.push_back(OpRecord{clock.TimestampUpdate(NowMicros(), 0), p, 0, 0});
    }
    produced += n;
    service.SubmitBatch(p, std::move(batch));
    if (batch_interval_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(batch_interval_us));
    }
  }
  service.Heartbeat(p, clock.max_ts() + 3'600'000'000ULL);
  return produced;
}

// Generic service concept: SubmitBatch(partition, vector<OpRecord>) and
// Heartbeat(partition, ts).
template <typename Service>
std::uint64_t DriveProducers(Service& service, const ProducerOptions& options) {
  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> producers;
  producers.reserve(options.num_partitions);
  const std::uint64_t deadline = NowMicros() + options.duration_us;
  for (std::uint32_t p = 0; p < options.num_partitions; ++p) {
    producers.emplace_back([&service, &options, &submitted, deadline, p] {
      submitted.fetch_add(
          ProducePartitionLoad(service, static_cast<PartitionId>(p),
                               options.ops_per_batch,
                               options.batch_interval_us,
                               /*max_ops=*/kTimestampMax, deadline),
          std::memory_order_relaxed);
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  return submitted.load();
}

// Fixed-load race for capacity measurements: every producer submits exactly
// ops_per_partition ops (batched, timestamp-ordered by a hybrid clock), then
// a far-future heartbeat, and the measurement is the wall-clock time until
// the service reports them all stabilized. Bounding the op count keeps
// memory flat even when the offered load far exceeds the stabilizer's
// capacity — which is exactly the regime the shard-scaling curve probes.
struct FixedLoad {
  std::uint32_t num_partitions = 16;
  std::uint64_t ops_per_partition = 250'000;
  std::uint64_t ops_per_batch = 2000;
  // 0 = submit flat out; otherwise sleep this long between batches.
  std::uint64_t batch_interval_us = 0;

  std::uint64_t total_ops() const {
    return static_cast<std::uint64_t>(num_partitions) * ops_per_partition;
  }
};

template <typename Service>
void SubmitFixedLoad(Service& service, const FixedLoad& load) {
  std::vector<std::thread> producers;
  producers.reserve(load.num_partitions);
  for (std::uint32_t p = 0; p < load.num_partitions; ++p) {
    producers.emplace_back([&service, &load, p] {
      ProducePartitionLoad(service, static_cast<PartitionId>(p),
                           load.ops_per_batch, load.batch_interval_us,
                           load.ops_per_partition,
                           /*deadline_us=*/kTimestampMax);
    });
  }
  for (auto& t : producers) {
    t.join();
  }
}

// Drives `service` with the fixed load and returns stabilized ops/sec
// (start-to-fully-stabilized). Works for EunomiaService and FtEunomiaService
// (anything with Start/Stop/SubmitBatch/Heartbeat/ops_stabilized).
template <typename Service>
double MeasureStabilizedThroughput(Service& service, const FixedLoad& load) {
  service.Start();
  const std::uint64_t start = NowMicros();
  SubmitFixedLoad(service, load);
  const std::uint64_t deadline = NowMicros() + 120'000'000ULL;
  while (service.ops_stabilized() < load.total_ops() && NowMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const std::uint64_t elapsed = NowMicros() - start;
  // Judge convergence before Stop(): its final flush may push the counter
  // to the target and mask a run that actually timed out.
  const bool converged = service.ops_stabilized() >= load.total_ops();
  service.Stop();
  if (!converged || elapsed == 0) {
    return 0.0;  // did not converge inside the deadline
  }
  return static_cast<double>(load.total_ops()) /
         (static_cast<double>(elapsed) / 1e6);
}

// Convenience wrapper: native EunomiaService with `num_shards` stabilizer
// workers and the given ordered-buffer backend behind each shard core.
inline double MeasureShardedThroughput(
    std::uint32_t num_shards, const FixedLoad& load,
    std::uint64_t stable_period_us = 200,
    ordbuf::Backend backend = ordbuf::Backend::kPartitionRun) {
  EunomiaService::Options options;
  options.num_partitions = load.num_partitions;
  options.num_shards = num_shards;
  options.stable_period_us = stable_period_us;
  options.buffer_backend = backend;
  EunomiaService service(options);
  return MeasureStabilizedThroughput(service, load);
}

// Sequencer load: each client thread issues blocking Next() calls flat out.
template <typename Sequencer>
std::uint64_t DriveSequencerClients(Sequencer& sequencer, std::uint32_t clients,
                                    std::uint64_t duration_us) {
  std::atomic<std::uint64_t> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const std::uint64_t deadline = NowMicros() + duration_us;
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&sequencer, &granted, deadline] {
      std::uint64_t local = 0;
      while (NowMicros() < deadline) {
        sequencer.Next();
        ++local;
      }
      granted.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  return granted.load();
}

}  // namespace eunomia::bench
