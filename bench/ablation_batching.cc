// Ablation A2 — the §5 batching optimization.
//
// "Batch operations at partitions, and propagate them to Eunomia only
// periodically. [This reduces] the number of messages received by Eunomia
// per unit of time at the cost of a slight increase in the stabilization
// time." And §7.1: "Eunomia's throughput can be further stretched by
// increasing the batching time (while slightly increasing the remote update
// visibility latency). Such stretching cannot be easily achieved with
// sequencers, as any attempt to batch requests at the sequencer blocks
// clients."
//
// We sweep the partition -> Eunomia communication interval in EunomiaKV and
// measure client throughput (expected: flat — batching is off the critical
// path) and remote visibility (expected: grows roughly with the interval).
#include <cstdio>
#include <vector>

#include "bench/flags.h"
#include "src/harness/geo_experiment.h"
#include "src/harness/table.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

using harness::RunGeoExperiment;
using harness::SystemKind;
using harness::Table;

void Run() {
  harness::PrintBanner(
      "Ablation A2: partition->Eunomia batching interval (§5)",
      "EunomiaKV, 90:10 uniform; batching is off the client critical path");

  wl::WorkloadConfig workload;
  workload.update_fraction = 0.10;
  workload.clients_per_dc = 24;
  workload.duration_us = 10 * sim::kSecond;
  workload.warmup_us = 2 * sim::kSecond;
  workload.cooldown_us = 1 * sim::kSecond;

  Table table({"batch interval", "throughput (ops/s)", "visibility p50 (ms)",
               "visibility p95 (ms)"});
  for (const std::uint64_t interval_us : {500u, 1000u, 2000u, 5000u, 10000u,
                                          20000u}) {
    geo::GeoConfig config;
    config.batch_interval_us = interval_us;
    // Heartbeat slack tracks the communication interval (a partition cannot
    // heartbeat more often than it talks to Eunomia).
    config.delta_us = std::max<std::uint64_t>(config.delta_us, interval_us);
    const auto result =
        RunGeoExperiment(SystemKind::kEunomiaKv, config, workload, 0, 1);
    table.AddRow({Table::Num(static_cast<double>(interval_us) / 1000.0, 1) + " ms",
                  Table::Num(result.throughput_ops_s, 0),
                  Table::Num(result.vis_p50_ms, 1),
                  Table::Num(result.vis_p95_ms, 1)});
  }
  table.Print();
  std::printf(
      "\nexpected: throughput stays flat (batching happens in the "
      "background), while the added visibility\ndelay grows roughly with "
      "the batching interval — the §5 / §7.1 tradeoff.\n");
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  // No flags yet; the shared parser still rejects typos loudly.
  eunomia::bench::Flags flags(argc, argv, {});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  eunomia::Run();
  return 0;
}
