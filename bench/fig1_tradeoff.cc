// Figure 1 — the motivation experiment: "Update visibility latency vs
// throughput tradeoff."
//
// Reproduces the paper's §2 study. Four systems over the 3-DC topology,
// normalized against the eventually consistent baseline:
//   - S-Seq: synchronous sequencer per DC (vector clocks);
//   - A-Seq: the bogus asynchronous variant (same work, sequencer off the
//     critical path);
//   - GentleRain and Cure: global stabilization, sweeping the clock
//     computation interval over {1, 10, 20, 50, 100} ms (both the cross-DC
//     heartbeat and the local stable-time computation run at this period).
//
// Left plot of the paper: 90th-percentile visibility latency at dc1 for
// updates originating at dc0 (GentleRain / Cure, growing with the
// interval). Right plot: throughput penalty vs eventual (S-Seq pays the
// synchronous sequencer round-trip ~-15%; A-Seq ~0%; GentleRain / Cure pay
// the stabilization overhead, worst at 1 ms).
//
// Load is moderate (client-limited, servers not saturated), matching the
// paper's note that "sequencers are not overloaded; the throughput penalty
// is exclusively caused by the synchronous communication with the sequencer
// at every client update operation".
#include <cstdio>
#include <vector>

#include "bench/flags.h"
#include "src/harness/geo_experiment.h"
#include "src/harness/table.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

using harness::RunGeoExperiment;
using harness::SystemKind;
using harness::Table;

wl::WorkloadConfig Fig1Workload() {
  wl::WorkloadConfig workload;
  workload.num_keys = 100'000;
  workload.update_fraction = 0.10;  // the paper's read-dominant 90:10
  workload.clients_per_dc = 3;      // client-limited: servers not saturated,
                                    // so the sequencer round-trip dominates
  workload.duration_us = 15 * sim::kSecond;
  workload.warmup_us = 3 * sim::kSecond;
  workload.cooldown_us = 2 * sim::kSecond;
  return workload;
}

void Run() {
  harness::PrintBanner(
      "Figure 1: update visibility latency vs throughput tradeoff",
      "90:10 uniform; visibility measured dc0->dc1 (90th pct, added delay); "
      "throughput normalized vs Eventual");

  const auto workload = Fig1Workload();
  geo::GeoConfig base_config;

  const auto eventual =
      RunGeoExperiment(SystemKind::kEventual, base_config, workload);
  const auto sseq = RunGeoExperiment(SystemKind::kSSeq, base_config, workload);
  const auto aseq = RunGeoExperiment(SystemKind::kASeq, base_config, workload);

  auto pct = [&](double tput) {
    return (tput - eventual.throughput_ops_s) / eventual.throughput_ops_s * 100.0;
  };

  Table table({"system", "stabilization interval", "visibility p90 (ms)",
               "throughput (ops/s)", "vs Eventual"});
  table.AddRow({"Eventual", "-", "-",
                Table::Num(eventual.throughput_ops_s, 0), Table::Pct(0.0)});
  table.AddRow({"S-Seq", "- (no interval)", Table::Num(sseq.vis_p90_ms, 1),
                Table::Num(sseq.throughput_ops_s, 0),
                Table::Pct(pct(sseq.throughput_ops_s))});
  table.AddRow({"A-Seq", "- (no interval)", Table::Num(aseq.vis_p90_ms, 1),
                Table::Num(aseq.throughput_ops_s, 0),
                Table::Pct(pct(aseq.throughput_ops_s))});

  for (const SystemKind kind : {SystemKind::kGentleRain, SystemKind::kCure}) {
    for (const std::uint64_t interval_ms : {1, 10, 20, 50, 100}) {
      geo::GeoConfig config = base_config;
      // The paper sweeps the interval between global stabilization
      // computations; cross-DC heartbeats stay at their default 10 ms.
      config.gst_interval_us = interval_ms * 1000;
      const auto result = RunGeoExperiment(kind, config, workload);
      table.AddRow({harness::SystemName(kind),
                    Table::Num(static_cast<double>(interval_ms), 0) + " ms",
                    Table::Num(result.vis_p90_ms, 1),
                    Table::Num(result.throughput_ops_s, 0),
                    Table::Pct(pct(result.throughput_ops_s))});
    }
  }
  table.Print();
  std::printf(
      "\npaper reference: S-Seq ~-14.8%% throughput (sync sequencer on the "
      "critical path), A-Seq ~0%%;\nCure still -11.6%% at a 100 ms interval; "
      "GentleRain/Cure visibility grows with the interval, Cure < GentleRain.\n");
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  // No flags yet; the shared parser still rejects typos loudly.
  eunomia::bench::Flags flags(argc, argv, {});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  eunomia::Run();
  return 0;
}
