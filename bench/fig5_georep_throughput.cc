// Figure 5 — "Throughput comparison between EunomiaKV and state-of-the-art
// sequencer-free solutions."
//
// Part 1 reproduces the paper's saturation-throughput comparison on the
// deterministic simulator: Eventual, EunomiaKV, GentleRain and Cure over
// the 3-DC topology (8 partitions / 3 servers per DC), across read:write
// ratios {50:50, 75:25, 90:10, 99:1} and both uniform ("U") and power-law
// ("P") key distributions, 100k keys, 100-byte values.
//
// Expected shape (paper §7.2.1): throughput decreases with the update
// percentage for every system; EunomiaKV stays within a few percent of
// Eventual (the paper reports 4.7% average, ~1% read-heavy); GentleRain and
// Cure sit clearly below both, with Cure lowest (vector metadata
// enrichment on top of the global stabilization cost).
//
// Part 2 (`--transport=tcp` or `--transport=loopback`) drives the SAME
// EunomiaKV protocol through its real binding: a multi-DC deployment of
// geo::rt::GeoNode over real sockets (or the in-process loopback
// transport), closed-loop clients at every datacenter, wall-clock
// throughput and remote-visibility latency measured from the per-node
// trackers — the deployable runtime next to its simulated reproduction.
//
// Both parts land in machine-readable BENCH_fig5.json (same shape as
// BENCH_fig2.json) so CI can archive the trajectory. `--smoke` shrinks
// the scan for CI.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/flags.h"
#include "src/georep/runtime/geo_node.h"
#include "src/harness/geo_experiment.h"
#include "src/harness/table.h"
#include "src/net/loopback_transport.h"
#include "src/net/epoll_transport.h"
#include "src/net/tcp_transport.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

using harness::RunGeoExperiment;
using harness::SystemKind;
using harness::Table;

struct SeriesPoint {
  std::string system;
  std::string workload;
  std::string transport;  // "sim", "tcp" or "loopback"
  double ops_per_s = 0.0;
  double vis_p95_ms = -1.0;  // remote visibility (artificial/applied delay)
  std::string io;  // TCP I/O backend ("epoll"/"threaded"); empty otherwise
};

void WriteBenchJson(const char* path, bool smoke,
                    const std::vector<SeriesPoint>& points) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"figure\": \"fig5_georep_throughput\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"series\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "    {\"system\": \"%s\", \"workload\": \"%s\", "
                 "\"transport\": \"%s\", \"ops_per_s\": %.1f",
                 points[i].system.c_str(), points[i].workload.c_str(),
                 points[i].transport.c_str(), points[i].ops_per_s);
    if (points[i].vis_p95_ms >= 0.0) {
      std::fprintf(f, ", \"vis_p95_ms\": %.2f", points[i].vis_p95_ms);
    }
    if (!points[i].io.empty()) {
      std::fprintf(f, ", \"io\": \"%s\"", points[i].io.c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu series points)\n", path, points.size());
}

// --- part 1: the simulated figure --------------------------------------------

bool RunSimPart(bool smoke, std::vector<SeriesPoint>* points) {
  geo::GeoConfig config;  // paper deployment: 3 DCs x 8 partitions / 3 servers

  const std::vector<double> update_fractions =
      smoke ? std::vector<double>{0.10}
            : std::vector<double>{0.50, 0.25, 0.10, 0.01};
  const std::vector<wl::KeyDistribution> distributions =
      smoke ? std::vector<wl::KeyDistribution>{wl::KeyDistribution::kUniform}
            : std::vector<wl::KeyDistribution>{wl::KeyDistribution::kUniform,
                                               wl::KeyDistribution::kZipf};
  const std::vector<SystemKind> systems =
      smoke ? std::vector<SystemKind>{SystemKind::kEventual,
                                      SystemKind::kEunomiaKv}
            : std::vector<SystemKind>{SystemKind::kEventual,
                                      SystemKind::kEunomiaKv,
                                      SystemKind::kGentleRain,
                                      SystemKind::kCure};

  harness::PrintBanner(
      "Figure 5: geo-replicated throughput (ops/sec, aggregate over 3 DCs)",
      "workloads: read:write x {uniform U, power-law P}; saturation load");

  std::vector<std::string> header = {"workload"};
  for (const SystemKind kind : systems) {
    header.push_back(harness::SystemName(kind));
  }
  header.push_back("EunomiaKV vs Eventual");
  Table table(std::move(header));
  double eunomia_drop_sum = 0.0;
  int eunomia_drop_count = 0;
  bool sane = true;

  for (const auto distribution : distributions) {
    for (const double update_fraction : update_fractions) {
      wl::WorkloadConfig workload;
      workload.num_keys = smoke ? 5'000 : 100'000;
      workload.value_size = 100;
      workload.update_fraction = update_fraction;
      workload.distribution = distribution;
      workload.clients_per_dc = smoke ? 12 : 48;
      workload.duration_us = (smoke ? 2 : 8) * sim::kSecond;
      workload.warmup_us =
          smoke ? 500 * sim::kMillisecond : 2 * sim::kSecond;
      workload.cooldown_us =
          smoke ? 500 * sim::kMillisecond : 1 * sim::kSecond;

      std::vector<std::string> row = {wl::MixLabel(workload)};
      double eventual_tput = 0.0;
      double eunomia_tput = 0.0;
      for (const SystemKind kind : systems) {
        const auto result = RunGeoExperiment(kind, config, workload);
        row.push_back(Table::Num(result.throughput_ops_s, 0));
        points->push_back({harness::SystemName(kind), wl::MixLabel(workload),
                           "sim", result.throughput_ops_s,
                           result.vis_p95_ms, /*io=*/""});
        if (result.throughput_ops_s <= 0.0) {
          sane = false;
        }
        if (kind == SystemKind::kEventual) {
          eventual_tput = result.throughput_ops_s;
        } else if (kind == SystemKind::kEunomiaKv) {
          eunomia_tput = result.throughput_ops_s;
        }
      }
      const double drop =
          (eunomia_tput - eventual_tput) / eventual_tput * 100.0;
      eunomia_drop_sum += drop;
      ++eunomia_drop_count;
      row.push_back(Table::Pct(drop));
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf(
      "\nEunomiaKV overhead vs eventual consistency, averaged over all "
      "workloads: %+.1f%% (paper: -4.7%% average, ~-1%% read-heavy)\n",
      eunomia_drop_sum / eunomia_drop_count);
  return sane;
}

// --- part 2: the real geo-replication runtime over a transport ---------------

struct TransportRunResult {
  double ops_per_s = 0.0;
  std::uint64_t remote_applied = 0;
  std::uint64_t wire_errors = 0;
  double vis_p50_ms = -1.0;
  double vis_p95_ms = -1.0;
};

// Closed-loop clients against a live multi-DC GeoNode deployment: each
// client chains op -> done -> next op (one update every 1/update_ratio
// ops), for a wall-clock measurement window.
TransportRunResult RunGeoNodes(const std::string& kind, bool smoke,
                               net::TcpBackend io) {
  geo::GeoConfig config;
  config.num_dcs = 3;
  config.partitions_per_dc = smoke ? 4 : 8;
  config.servers_per_dc = 1;
  config.batch_interval_us = 1000;
  config.theta_us = 1000;
  config.rho_us = 1000;
  const std::uint32_t clients_per_dc = smoke ? 8 : 16;
  const int update_every = 10;  // 90:10, the paper's default mix
  const auto duration =
      std::chrono::milliseconds(smoke ? 1'500 : 5'000);

  TransportRunResult result;
  // TCP: one transport per node (real sockets, one listener each).
  // Loopback: one shared in-process transport, named listeners. Declared
  // before the nodes so unwinding (including the early error returns)
  // destroys every GeoNode — whose Stop() touches its transport — first.
  std::shared_ptr<net::LoopbackTransport> shared_loopback;
  if (kind == "loopback") {
    shared_loopback = std::make_shared<net::LoopbackTransport>();
  }
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<geo::rt::GeoNode>> nodes;
  std::vector<std::string> addresses;
  for (DatacenterId m = 0; m < config.num_dcs; ++m) {
    net::Transport* transport = nullptr;
    if (shared_loopback != nullptr) {
      transport = shared_loopback.get();
    } else {
      transports.push_back(net::MakeTcpTransport(io));
      transport = transports.back().get();
    }
    nodes.push_back(std::make_unique<geo::rt::GeoNode>(
        transport, geo::rt::GeoNode::Options{m, config, false}));
    addresses.push_back(nodes.back()->Listen(
        shared_loopback != nullptr ? "fig5-node" + std::to_string(m)
                                   : "127.0.0.1:0"));
    if (addresses.back().empty()) {
      std::printf("ERROR: dc%u could not listen\n", m);
      return result;
    }
  }
  for (DatacenterId m = 0; m < config.num_dcs; ++m) {
    for (DatacenterId k = 0; k < config.num_dcs; ++k) {
      if (k != m && !nodes[m]->ConnectPeer(k, addresses[k])) {
        std::printf("ERROR: dc%u could not dial dc%u\n", m, k);
        return result;
      }
    }
  }
  for (auto& node : nodes) {
    node->Start();
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::shared_ptr<std::function<void(int)>>> issues;
  for (DatacenterId m = 0; m < config.num_dcs; ++m) {
    for (std::uint32_t c = 0; c < clients_per_dc; ++c) {
      const ClientId client = m * 1000 + c;
      geo::rt::GeoNode* node = nodes[m].get();
      auto issue = std::make_shared<std::function<void(int)>>();
      issues.push_back(issue);
      *issue = [node, client, m, c, issue, update_every, &stop,
                &completed](int i) {
        if (stop.load(std::memory_order_relaxed)) {
          return;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        // Disjoint per-client key ranges keep the final contents exact.
        const Key key = (static_cast<Key>(m) * 1000 + c) * 100'000 +
                        static_cast<Key>(i % 4096);
        if (i % update_every == 0) {
          node->ClientUpdate(client, key, "fig5-value-100-bytes",
                             [issue, i] { (*issue)(i + 1); });
        } else {
          node->ClientRead(client, key, [issue, i] { (*issue)(i + 1); });
        }
      };
      (*issue)(0);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(duration);
  stop.store(true);
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  result.ops_per_s = static_cast<double>(completed.load()) / elapsed_s;

  // Drain in-flight replication, then read the per-node trackers.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  for (auto& node : nodes) {
    std::uint64_t applied = 0;
    node->RunBlocking(
        [&] { applied = node->runtime().receiver().applied_count(); });
    result.remote_applied += applied;
    result.wire_errors += node->wire_errors() + node->send_failures();
  }
  // Visibility of dc0's updates observed at dc1, from dc1's tracker.
  nodes[1]->RunBlocking([&] {
    if (const Cdf* vis = nodes[1]->tracker().Visibility(0, 1);
        vis != nullptr && vis->count() > 0) {
      result.vis_p50_ms = vis->Quantile(0.50) / 1000.0;
      result.vis_p95_ms = vis->Quantile(0.95) / 1000.0;
    }
  });
  for (auto& node : nodes) {
    node->Stop();
  }
  // The client chains are self-referential (each function captures the
  // shared_ptr that owns it); with every event loop joined, break the
  // cycles so their captures can be reclaimed.
  for (auto& issue : issues) {
    *issue = nullptr;
  }
  return result;
}

bool RunTransportPart(const std::string& kind, bool smoke,
                      net::TcpBackend io, std::vector<SeriesPoint>* points) {
  std::printf(
      "\nreal geo-replication runtime (%s transport%s%s): 3 GeoNodes, "
      "closed-loop 90:10 clients at every DC\n",
      kind.c_str(), kind == "tcp" ? ", io=" : "",
      kind == "tcp" ? net::TcpBackendName(io) : "");
  const TransportRunResult result = RunGeoNodes(kind, smoke, io);
  Table table({"transport", "ops/s (aggregate)", "remote applies",
               "vis p50 (ms)", "vis p95 (ms)"});
  table.AddRow({kind, Table::Num(result.ops_per_s, 0),
                Table::Num(static_cast<double>(result.remote_applied), 0),
                Table::Num(result.vis_p50_ms, 2),
                Table::Num(result.vis_p95_ms, 2)});
  table.Print();
  points->push_back({"EunomiaKV", "90:10 U", kind, result.ops_per_s,
                     result.vis_p95_ms,
                     kind == "tcp" ? net::TcpBackendName(io) : ""});
  if (result.ops_per_s <= 0.0 || result.remote_applied == 0 ||
      result.wire_errors != 0) {
    std::printf(
        "ERROR: the %s deployment did not replicate cleanly "
        "(ops/s=%.0f, remote applies=%llu, wire errors=%llu)\n",
        kind.c_str(), result.ops_per_s,
        static_cast<unsigned long long>(result.remote_applied),
        static_cast<unsigned long long>(result.wire_errors));
    return false;
  }
  return true;
}

int Run(bool smoke, const std::string& transport, net::TcpBackend io) {
  std::vector<SeriesPoint> points;
  bool ok = RunSimPart(smoke, &points);
  if (transport != "sim") {
    ok = RunTransportPart(transport, smoke, io, &points) && ok;
  }
  WriteBenchJson("BENCH_fig5.json", smoke, points);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  eunomia::bench::Flags flags(argc, argv, {"smoke", "transport", "io"});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  const std::string transport = flags.Get("transport", "sim");
  if (transport != "sim" && transport != "tcp" && transport != "loopback") {
    std::fprintf(stderr,
                 "--transport must be sim, tcp or loopback (got '%s')\n",
                 transport.c_str());
    return 2;
  }
  eunomia::net::TcpBackend io = eunomia::net::TcpBackend::kEpoll;
  if (!eunomia::net::ParseTcpBackend(flags.Get("io", "epoll"), &io)) {
    std::fprintf(stderr, "--io must be epoll or threaded (got '%s')\n",
                 flags.Get("io", "epoll").c_str());
    return 2;
  }
  return eunomia::Run(flags.smoke(), transport, io);
}
