// Figure 5 — "Throughput comparison between EunomiaKV and state-of-the-art
// sequencer-free solutions."
//
// Reproduces the paper's saturation-throughput comparison: Eventual,
// EunomiaKV, GentleRain and Cure over the 3-DC topology (8 partitions / 3
// servers per DC), across read:write ratios {50:50, 75:25, 90:10, 99:1} and
// both uniform ("U") and power-law ("P") key distributions, 100k keys,
// 100-byte values.
//
// Expected shape (paper §7.2.1): throughput decreases with the update
// percentage for every system; EunomiaKV stays within a few percent of
// Eventual (the paper reports 4.7% average, ~1% read-heavy); GentleRain and
// Cure sit clearly below both, with Cure lowest (vector metadata
// enrichment on top of the global stabilization cost).
#include <cstdio>
#include <vector>

#include "bench/flags.h"
#include "src/harness/geo_experiment.h"
#include "src/harness/table.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

using harness::RunGeoExperiment;
using harness::SystemKind;
using harness::Table;

void Run() {
  geo::GeoConfig config;  // paper deployment: 3 DCs x 8 partitions / 3 servers

  const std::vector<double> update_fractions = {0.50, 0.25, 0.10, 0.01};
  const std::vector<wl::KeyDistribution> distributions = {
      wl::KeyDistribution::kUniform, wl::KeyDistribution::kZipf};
  const std::vector<SystemKind> systems = {
      SystemKind::kEventual, SystemKind::kEunomiaKv, SystemKind::kGentleRain,
      SystemKind::kCure};

  harness::PrintBanner(
      "Figure 5: geo-replicated throughput (ops/sec, aggregate over 3 DCs)",
      "workloads: read:write x {uniform U, power-law P}; saturation load");

  Table table({"workload", "Eventual", "EunomiaKV", "GentleRain", "Cure",
               "EunomiaKV vs Eventual"});
  double eunomia_drop_sum = 0.0;
  int eunomia_drop_count = 0;

  for (const auto distribution : distributions) {
    for (const double update_fraction : update_fractions) {
      wl::WorkloadConfig workload;
      workload.num_keys = 100'000;
      workload.value_size = 100;
      workload.update_fraction = update_fraction;
      workload.distribution = distribution;
      workload.clients_per_dc = 48;  // saturates the 3 servers per DC
      workload.duration_us = 8 * sim::kSecond;
      workload.warmup_us = 2 * sim::kSecond;
      workload.cooldown_us = 1 * sim::kSecond;

      std::vector<std::string> row = {wl::MixLabel(workload)};
      double eventual_tput = 0.0;
      double eunomia_tput = 0.0;
      for (const SystemKind kind : systems) {
        const auto result = RunGeoExperiment(kind, config, workload);
        row.push_back(Table::Num(result.throughput_ops_s, 0));
        if (kind == SystemKind::kEventual) {
          eventual_tput = result.throughput_ops_s;
        } else if (kind == SystemKind::kEunomiaKv) {
          eunomia_tput = result.throughput_ops_s;
        }
      }
      const double drop = (eunomia_tput - eventual_tput) / eventual_tput * 100.0;
      eunomia_drop_sum += drop;
      ++eunomia_drop_count;
      row.push_back(Table::Pct(drop));
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf(
      "\nEunomiaKV overhead vs eventual consistency, averaged over all "
      "workloads: %+.1f%% (paper: -4.7%% average, ~-1%% read-heavy)\n",
      eunomia_drop_sum / eunomia_drop_count);
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  // No flags yet; the shared parser still rejects typos loudly.
  eunomia::bench::Flags flags(argc, argv, {});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  eunomia::Run();
  return 0;
}
