// WAL overhead — what durability costs the ordering service.
//
// Drives the fig2 fixed-load race (producers x batched ops through the
// native EunomiaService, measuring stabilized ops/sec) four times:
//
//   wal=off          the in-memory baseline (fig2's single-shard number)
//   fsync=off        WAL appends, durability left to the page cache
//   fsync=interval   group commit: one fsync per 5 ms / 64 KiB of log
//   fsync=commit     every ack waits for its batch to be on disk
//
// against a wal::PosixDisk on a fresh temp directory per configuration.
// The interesting number is the interval-fsync overhead: the group-commit
// pipeline is designed to keep it within ~15% of the in-memory baseline
// (the acceptance bar BENCH_wal.json is checked against), while
// fsync=commit pays the full synchronous-disk price and is reported for
// calibration, not expected to be close.
//
// Emits BENCH_wal.json in the working directory (same shape as
// BENCH_fig2.json) so CI can archive the durability-cost trajectory.
// `--smoke` shrinks the load for CI; full mode is the committed artifact.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <string>
#include <vector>

#include "bench/flags.h"
#include "bench/service_driver.h"
#include "src/eunomia/service.h"
#include "src/harness/table.h"
#include "src/wal/disk.h"
#include "src/wal/log_writer.h"

namespace eunomia {
namespace {

using harness::Table;

struct WalPoint {
  const char* config;  // "off" or the fsync policy name
  bool wal = false;
  std::uint32_t shards = 1;
  double ops_per_sec = 0.0;      // wall clock, hostage to neighbors
  double ops_per_cpu_sec = 0.0;  // process CPU time: the WAL's real cost
  std::uint64_t snapshots = 0;
};

double ProcessCpuSeconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

bench::FixedLoad MakeLoad(bool smoke) {
  bench::FixedLoad load;
  load.num_partitions = smoke ? 8 : 16;
  load.ops_per_partition = smoke ? 5'000 : 100'000;
  return load;
}

struct RunResult {
  double ops_per_sec = 0.0;      // 0.0: failed to converge
  double ops_per_cpu_sec = 0.0;
  std::uint64_t snapshots = 0;
};

// One measured run. `policy` is ignored when wal is false.
RunResult MeasureRun(bool wal, wal::FsyncPolicy policy, std::uint32_t shards,
                     const bench::FixedLoad& load) {
  RunResult result;
  EunomiaService::Options options;
  options.num_partitions = load.num_partitions;
  options.num_shards = shards;
  options.stable_period_us = 200;
  std::unique_ptr<wal::PosixDisk> disk;
  std::string dir;
  if (wal) {
    char dir_template[] = "/tmp/eunomia-wal-bench-XXXXXX";
    if (mkdtemp(dir_template) == nullptr) {
      return result;
    }
    dir = dir_template;
    disk = std::make_unique<wal::PosixDisk>(dir);
    if (!disk->ok()) {
      return result;
    }
    options.durability.disk = disk.get();
    options.durability.fsync = policy;
  }
  {
    EunomiaService service(options);
    const double cpu_before = ProcessCpuSeconds();
    result.ops_per_sec = bench::MeasureStabilizedThroughput(service, load);
    const double cpu_spent = ProcessCpuSeconds() - cpu_before;
    result.snapshots = service.wal_snapshots();
    if (result.ops_per_sec > 0.0 && cpu_spent > 0.0) {
      const double total_ops = static_cast<double>(load.num_partitions) *
                               static_cast<double>(load.ops_per_partition);
      result.ops_per_cpu_sec = total_ops / cpu_spent;
    }
  }
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return result;
}

int Run(bool smoke) {
  harness::PrintBanner(
      "WAL overhead: durable vs in-memory service throughput",
      "fig2 fixed-load race, single shard; group commit is the deployed "
      "configuration");
  const bench::FixedLoad load = MakeLoad(smoke);
  const std::vector<std::uint32_t> shard_counts =
      smoke ? std::vector<std::uint32_t>{1u} : std::vector<std::uint32_t>{1u, 4u};

  struct Config {
    const char* name;
    bool wal;
    wal::FsyncPolicy policy;
  };
  const Config configs[] = {
      {"off", false, wal::FsyncPolicy::kOff},
      {"fsync=off", true, wal::FsyncPolicy::kOff},
      {"fsync=interval", true, wal::FsyncPolicy::kInterval},
      {"fsync=commit", true, wal::FsyncPolicy::kPerCommit},
  };

  std::printf("\n%u producer partitions race %llu ops each per configuration\n",
              load.num_partitions,
              static_cast<unsigned long long>(load.ops_per_partition));
  Table table({"wal", "num_shards", "stabilized (kops/s)", "vs in-memory",
               "kops/cpu-s", "cpu vs in-memory", "snapshots"});
  std::vector<WalPoint> points;
  bool all_converged = true;
  double interval_overhead_1shard = 0.0;
  constexpr int kReps = 5;
  constexpr std::size_t kNumConfigs = std::size(configs);
  for (const std::uint32_t shards : shard_counts) {
    // Repetitions are interleaved round-robin across the configurations:
    // the host shares one core with whatever else runs, and back-to-back
    // reps of a single configuration would charge an entire busy window to
    // that one configuration. Overheads are then judged on *per-rep*
    // ratios — each WAL configuration against the baseline measured
    // seconds away in the same rep, so both sides of every comparison saw
    // roughly the same neighbor interference — and the median ratio across
    // reps drops the windows where interference still hit the two sides
    // unequally (in either direction: max-of-ratios would happily report
    // the WAL as faster than memory off a rep whose baseline got unlucky).
    // (Best-of on the raw rates alone cannot do this: a quiet minute for
    // the baseline and a busy one for the WAL configs reads as overhead.)
    RunResult runs[kNumConfigs][kReps] = {};
    for (int rep = 0; rep < kReps; ++rep) {
      for (std::size_t c = 0; c < kNumConfigs; ++c) {
        runs[c][rep] =
            MeasureRun(configs[c].wal, configs[c].policy, shards, load);
        if (runs[c][rep].ops_per_sec <= 0.0) {
          all_converged = false;  // non-convergence is a failure, not noise
        }
      }
    }
    const auto median = [](std::vector<double>& v) {
      if (v.empty()) {
        return 0.0;
      }
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    for (std::size_t c = 0; c < kNumConfigs; ++c) {
      RunResult best;  // best raw rates, for the absolute columns
      std::vector<double> ratios;
      std::vector<double> cpu_ratios;
      for (int rep = 0; rep < kReps; ++rep) {
        const RunResult& run = runs[c][rep];
        const RunResult& base = runs[0][rep];  // configs[0] is wal=off
        if (run.ops_per_sec > best.ops_per_sec) {
          best.ops_per_sec = run.ops_per_sec;
          best.snapshots = run.snapshots;
        }
        if (run.ops_per_cpu_sec > best.ops_per_cpu_sec) {
          best.ops_per_cpu_sec = run.ops_per_cpu_sec;
        }
        if (base.ops_per_sec > 0 && run.ops_per_sec > 0) {
          ratios.push_back(run.ops_per_sec / base.ops_per_sec);
        }
        if (base.ops_per_cpu_sec > 0 && run.ops_per_cpu_sec > 0) {
          cpu_ratios.push_back(run.ops_per_cpu_sec / base.ops_per_cpu_sec);
        }
      }
      const double relative = median(ratios);
      const double cpu_relative = median(cpu_ratios);
      // The budget is judged on the CPU-normalized per-rep ratio: wall
      // clock measures the neighbors as much as the WAL, while CPU time
      // charges the cycles the durability pipeline itself adds.
      if (configs[c].wal && configs[c].policy == wal::FsyncPolicy::kInterval &&
          shards == 1) {
        interval_overhead_1shard = 1.0 - cpu_relative;
      }
      points.push_back({configs[c].name, configs[c].wal, shards,
                        best.ops_per_sec, best.ops_per_cpu_sec,
                        best.snapshots});
      table.AddRow(
          {configs[c].name, Table::Num(shards, 0),
           Table::Num(best.ops_per_sec / 1000.0, 0),
           configs[c].wal ? Table::Num(relative * 100.0, 1) + "%" : "100%",
           Table::Num(best.ops_per_cpu_sec / 1000.0, 0),
           configs[c].wal ? Table::Num(cpu_relative * 100.0, 1) + "%" : "100%",
           Table::Num(best.snapshots, 0)});
    }
  }
  table.Print();
  std::printf(
      "\nsingle-shard interval-fsync (group commit) CPU overhead vs "
      "in-memory: %.1f%% %s\n",
      interval_overhead_1shard * 100.0,
      interval_overhead_1shard <= 0.15 ? "(within the 15%% budget)"
                                       : "(OVER the 15%% budget)");

  std::FILE* f = std::fopen("BENCH_wal.json", "w");
  if (f == nullptr) {
    std::printf("WARNING: could not write BENCH_wal.json\n");
  } else {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"figure\": \"wal_overhead\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"num_partitions\": %u,\n", load.num_partitions);
    std::fprintf(f, "  \"ops_per_partition\": %llu,\n",
                 static_cast<unsigned long long>(load.ops_per_partition));
    // interval_overhead_1shard is CPU-normalized — the budget metric. Wall
    // clock is reported per-point for context but is hostage to neighbor
    // load on shared single-core hosts.
    std::fprintf(f, "  \"interval_overhead_1shard\": %.4f,\n",
                 interval_overhead_1shard);
    std::fprintf(f, "  \"overhead_metric\": \"cpu_time\",\n");
    std::fprintf(f, "  \"series\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(f,
                   "    {\"wal\": \"%s\", \"shards\": %u, "
                   "\"mops_per_s\": %.3f, \"cpu_mops_per_s\": %.3f, "
                   "\"snapshots\": %llu}%s\n",
                   points[i].config, points[i].shards,
                   points[i].ops_per_sec / 1e6,
                   points[i].ops_per_cpu_sec / 1e6,
                   static_cast<unsigned long long>(points[i].snapshots),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_wal.json (%zu points)\n", points.size());
  }
  if (!all_converged) {
    std::printf("ERROR: a configuration did not stabilize its load\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  eunomia::bench::Flags flags(argc, argv, {"smoke"});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  return eunomia::Run(flags.smoke());
}
