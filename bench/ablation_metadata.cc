// Ablation A3 — vector vs scalar metadata in EunomiaKV (§4).
//
// "Vector clocks make a more efficient tracking of causal dependencies
// introducing no false dependencies across datacenters ... the lower-bound
// update visibility latency for a system relying on vector clocks is the
// latency between the originator of the update and the remote datacenter,
// while with a single scalar it is the latency to the farthest datacenter
// regardless of the originator."
//
// We run EunomiaKV twice — vectors vs the scalar-compressed variant — and
// measure the *absolute* visibility latency (installation at the origin to
// visibility at the destination, network included) on the asymmetric
// topology: dc0 -> dc1 is a 40 ms leg, but the farthest inter-DC leg is
// 80 ms. With vectors, dc0's updates appear at dc1 after ~40 ms; with the
// scalar, they cannot appear before the 80 ms frontier has been dragged
// along.
#include <cstdio>
#include <vector>

#include "bench/flags.h"
#include "src/georep/eunomiakv.h"
#include "src/harness/geo_experiment.h"
#include "src/harness/table.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

using harness::Table;

struct VisStats {
  double p50_ms = 0;
  double p95_ms = 0;
};

// End-to-end (install -> visible) latency needs the install timestamps; the
// tracker's CDFs are arrival-based, so we recompute from the detailed log.
VisStats Measure(bool scalar_metadata, DatacenterId origin, DatacenterId dest) {
  geo::GeoConfig config;
  config.scalar_metadata = scalar_metadata;
  sim::Simulator sim(31);
  geo::EunomiaKvSystem system(&sim, config);
  system.tracker().EnableDetailedLog();

  wl::WorkloadConfig workload;
  workload.update_fraction = 0.10;
  workload.clients_per_dc = 12;
  workload.duration_us = 15 * sim::kSecond;
  wl::WorkloadDriver driver(&sim, &system, workload, config.num_dcs);

  // Track installation times per uid via a shadow: uids are assigned in
  // installation order, so replay them from the per-pair visibility CDF is
  // not enough — use artificial delay + the known one-way latency instead.
  driver.Start();
  sim.RunUntil(workload.duration_us);
  driver.Stop();
  sim.RunUntil(workload.duration_us + 3 * sim::kSecond);

  const Cdf* vis = system.tracker().Visibility(origin, dest);
  VisStats stats;
  if (vis != nullptr && vis->count() > 0) {
    // Artificial delay + the (origin,dest) one-way network latency gives the
    // end-to-end visibility latency the paper's §4 discussion refers to.
    const double leg_ms =
        static_cast<double>(config.network.wan_one_way_us[origin][dest]) / 1000.0;
    stats.p50_ms = vis->Quantile(0.50) / 1000.0 + leg_ms;
    stats.p95_ms = vis->Quantile(0.95) / 1000.0 + leg_ms;
  }
  return stats;
}

void Run() {
  harness::PrintBanner(
      "Ablation A3: vector vs scalar metadata in EunomiaKV",
      "end-to-end visibility latency (install -> visible, ms); farthest "
      "inter-DC leg is 80 ms one-way");

  Table table({"path (one-way)", "vector p50", "vector p95", "scalar p50",
               "scalar p95"});
  const struct {
    DatacenterId origin;
    DatacenterId dest;
    const char* label;
  } kPaths[] = {
      {0, 1, "dc0->dc1 (40 ms)"},
      {0, 2, "dc0->dc2 (40 ms)"},
      {1, 2, "dc1->dc2 (80 ms)"},
  };
  for (const auto& path : kPaths) {
    const auto vec = Measure(false, path.origin, path.dest);
    const auto sca = Measure(true, path.origin, path.dest);
    table.AddRow({path.label, Table::Num(vec.p50_ms, 1),
                  Table::Num(vec.p95_ms, 1), Table::Num(sca.p50_ms, 1),
                  Table::Num(sca.p95_ms, 1)});
  }
  table.Print();
  std::printf(
      "\nexpected: on 40 ms legs, vectors give ~40-45 ms visibility while "
      "the scalar variant is dragged to the\n~80 ms farthest-leg frontier; "
      "on the 80 ms leg the two are comparable (the leg is already the "
      "farthest).\n");
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  // No flags yet; the shared parser still rejects typos loudly.
  eunomia::bench::Flags flags(argc, argv, {});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  eunomia::Run();
  return 0;
}
