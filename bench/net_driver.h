// Multi-connection load driver for the networked service (src/net/): the
// fig2 `--transport=tcp|loopback` mode and the eunomiad smoke test use it.
//
// Shape of a run: an EunomiaServer is started behind the given transport;
// one EunomiaClient connection per partition (the per-channel FIFO contract
// — a partition must stay on one connection) races the shared FixedLoad
// through the socket hop; the measurement is start-to-fully-stabilized on
// the server side, exactly like the in-process scan, so the numbers are
// directly comparable. All connections record ack round-trip latency into
// one shared metrics::Histogram (recording is wait-free), so there is no
// per-client merge step.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/service_driver.h"
#include "src/metrics/histogram.h"
#include "src/metrics/registry.h"
#include "src/net/eunomia_client.h"
#include "src/net/eunomia_server.h"

namespace eunomia::bench {

struct TransportRunResult {
  double ops_per_sec = 0.0;  // 0 => a client failed or the load never stabilized
  metrics::Histogram::Snapshot ack_latency_us;
};

inline TransportRunResult MeasureTransportThroughput(
    net::Transport& transport, const std::string& listen_address,
    std::uint32_t num_shards, const FixedLoad& load,
    std::uint64_t stable_period_us = 200,
    ordbuf::Backend backend = ordbuf::Backend::kPartitionRun,
    metrics::Registry* metrics = nullptr) {
  TransportRunResult result;
  net::EunomiaServer::Options options;
  options.num_partitions = load.num_partitions;
  options.num_shards = num_shards;
  options.stable_period_us = stable_period_us;
  options.buffer_backend = backend;
  // When set, the server + service register their series here (the net
  // layer's frame counters are always on in Registry::Default()); the CI
  // fig2 TCP smoke scrapes this mid-run into a .prom artifact.
  options.metrics = metrics;
  net::EunomiaServer server(&transport, options);
  const std::string address = server.Start(listen_address);
  if (address.empty()) {
    return result;
  }
  const std::uint64_t start = NowMicros();
  std::atomic<bool> all_ok{true};
  // Every connection records into this one histogram; snapped into the
  // result after the producers join.
  const auto ack_latency = std::make_shared<metrics::Histogram>(
      "bench_net_ack_latency_microseconds",
      "Batch ack round-trip latency across all driver connections");
  std::vector<std::thread> producers;
  producers.reserve(load.num_partitions);
  for (std::uint32_t p = 0; p < load.num_partitions; ++p) {
    producers.emplace_back([&, p] {
      net::EunomiaClient::Options client_options;
      client_options.ack_latency_us = ack_latency;
      net::EunomiaClient client(&transport, address,
                                std::move(client_options));
      if (!client.Connect()) {
        all_ok.store(false);
        return;
      }
      ProducePartitionLoad(client, static_cast<PartitionId>(p),
                           load.ops_per_batch, load.batch_interval_us,
                           load.ops_per_partition,
                           /*deadline_us=*/kTimestampMax);
      if (!client.WaitForAcks()) {
        all_ok.store(false);
      }
      client.Close();
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  result.ack_latency_us = ack_latency->Snap();
  const std::uint64_t deadline = NowMicros() + 120'000'000ULL;
  while (server.ops_stabilized() < load.total_ops() && NowMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const std::uint64_t elapsed = NowMicros() - start;
  const bool converged = server.ops_stabilized() >= load.total_ops();
  server.Stop();
  if (!all_ok.load() || !converged || elapsed == 0) {
    return result;
  }
  result.ops_per_sec = static_cast<double>(load.total_ops()) /
                       (static_cast<double>(elapsed) / 1e6);
  return result;
}

}  // namespace eunomia::bench
