// Multi-connection load driver for the networked service (src/net/): the
// fig2 `--transport=tcp|loopback` mode and the eunomiad smoke test use it.
//
// Shape of a run: an EunomiaServer is started behind the given transport;
// one EunomiaClient connection per partition (the per-channel FIFO contract
// — a partition must stay on one connection) races the shared FixedLoad
// through the socket hop; the measurement is start-to-fully-stabilized on
// the server side, exactly like the in-process scan, so the numbers are
// directly comparable. Per-connection ack round-trip stats are merged with
// OnlineStats::Merge so min/max survive aggregation.
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>
#include "src/common/sync.h"

#include "bench/service_driver.h"
#include "src/common/stats.h"
#include "src/net/eunomia_client.h"
#include "src/net/eunomia_server.h"

namespace eunomia::bench {

struct TransportRunResult {
  double ops_per_sec = 0.0;  // 0 => a client failed or the load never stabilized
  OnlineStats ack_latency_us;
};

inline TransportRunResult MeasureTransportThroughput(
    net::Transport& transport, const std::string& listen_address,
    std::uint32_t num_shards, const FixedLoad& load,
    std::uint64_t stable_period_us = 200,
    ordbuf::Backend backend = ordbuf::Backend::kPartitionRun) {
  TransportRunResult result;
  net::EunomiaServer::Options options;
  options.num_partitions = load.num_partitions;
  options.num_shards = num_shards;
  options.stable_period_us = stable_period_us;
  options.buffer_backend = backend;
  net::EunomiaServer server(&transport, options);
  const std::string address = server.Start(listen_address);
  if (address.empty()) {
    return result;
  }
  const std::uint64_t start = NowMicros();
  std::atomic<bool> all_ok{true};
  eunomia::sync::Mutex stats_mu{"net_driver::stats_mu", eunomia::sync::kRankLeaf};
  std::vector<std::thread> producers;
  producers.reserve(load.num_partitions);
  for (std::uint32_t p = 0; p < load.num_partitions; ++p) {
    producers.emplace_back([&, p] {
      net::EunomiaClient client(&transport, address, {});
      if (!client.Connect()) {
        all_ok.store(false);
        return;
      }
      ProducePartitionLoad(client, static_cast<PartitionId>(p),
                           load.ops_per_batch, load.batch_interval_us,
                           load.ops_per_partition,
                           /*deadline_us=*/kTimestampMax);
      if (!client.WaitForAcks()) {
        all_ok.store(false);
      }
      // ack_latency_us() takes the client session lock (rank above
      // stats_mu's): snapshot it first, merge under stats_mu alone.
      const OnlineStats client_acks = client.ack_latency_us();
      {
        eunomia::sync::MutexLock lock(stats_mu);
        result.ack_latency_us.Merge(client_acks);
      }
      client.Close();
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  const std::uint64_t deadline = NowMicros() + 120'000'000ULL;
  while (server.ops_stabilized() < load.total_ops() && NowMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const std::uint64_t elapsed = NowMicros() - start;
  const bool converged = server.ops_stabilized() >= load.total_ops();
  server.Stop();
  if (!all_ok.load() || !converged || elapsed == 0) {
    return result;
  }
  result.ops_per_sec = static_cast<double>(load.total_ops()) /
                       (static_cast<double>(elapsed) / 1e6);
  return result;
}

}  // namespace eunomia::bench
