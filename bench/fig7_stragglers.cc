// Figure 7 — "Stragglers impact on Eunomia."
//
// The paper's §7.2.3 experiment: a 3-minute run where, during the middle
// minute, one partition of dc2 "communicates abnormally with its local
// Eunomia service — instead of communicating every millisecond, it contacts
// Eunomia less frequently" (intervals of 10 ms, 100 ms and 1 s). Because
// Eunomia's stable time is the minimum over all partitions, updates from
// *healthy* partitions of dc2 are delayed by roughly the straggler's
// communication interval; after the partition heals, visibility recovers.
//
// The paper also contrasts with a sequencer-based system: there, update
// shipping order is established synchronously per update, so healthy
// partitions are unaffected — but clients *of the straggling partition* see
// their update latency grow by the straggling interval, which is worse for
// the end user ("an increase in user-perceived latency may translate into
// concrete revenue loss").
//
// Timeline scaled 3x down: 20 s healthy / 20 s straggling / 20 s healed;
// visibility measured at dc1 for updates originating at dc2.
#include <cstdio>
#include <vector>

#include "bench/flags.h"
#include "src/georep/eunomiakv.h"
#include "src/harness/geo_experiment.h"
#include "src/harness/table.h"
#include "src/sequencer/seq_system.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

using harness::Table;

constexpr std::uint64_t kPhaseUs = 20 * sim::kSecond;
constexpr std::uint64_t kWindowUs = 2 * sim::kSecond;
constexpr DatacenterId kStragglerDc = 2;
constexpr PartitionId kStragglerPartition = 0;

wl::WorkloadConfig Fig7Workload() {
  wl::WorkloadConfig workload;
  workload.num_keys = 100'000;
  workload.update_fraction = 0.10;
  workload.clients_per_dc = 12;
  workload.duration_us = 3 * kPhaseUs;
  return workload;
}

// Mean added visibility delay (ms) per window for dc2-origin updates at dc1.
std::vector<double> RunEunomia(std::uint64_t straggle_interval_us) {
  geo::GeoConfig config;
  config.timeline_window_us = kWindowUs;
  sim::Simulator sim(29);
  geo::EunomiaKvSystem system(&sim, config);
  const auto workload = Fig7Workload();
  wl::WorkloadDriver driver(&sim, &system, workload, config.num_dcs);
  driver.Start();

  sim.ScheduleAt(kPhaseUs, [&] {
    system.SetPartitionCommInterval(kStragglerDc, kStragglerPartition,
                                    straggle_interval_us);
  });
  sim.ScheduleAt(2 * kPhaseUs, [&] {
    system.SetPartitionCommInterval(kStragglerDc, kStragglerPartition,
                                    config.batch_interval_us);  // heal
  });
  sim.RunUntil(workload.duration_us);
  driver.Stop();
  sim.RunUntil(workload.duration_us + 3 * sim::kSecond);

  const TimeSeries* timeline =
      system.tracker().VisibilityTimeline(kStragglerDc, 1);
  std::vector<double> means;
  if (timeline != nullptr) {
    for (const double v : timeline->ValueMeans()) {
      means.push_back(v / 1000.0);
    }
  }
  means.resize(workload.duration_us / kWindowUs, 0.0);
  return means;
}

struct SeqResult {
  std::vector<double> visibility_ms;     // healthy-partition visibility at dc1
  double healthy_update_latency_ms = 0;  // client latency, straggling phase
};

SeqResult RunSequencer(std::uint64_t straggle_interval_us) {
  geo::GeoConfig config;
  config.timeline_window_us = kWindowUs;
  sim::Simulator sim(29);
  geo::SeqSystem system(&sim, config, geo::SeqSystem::Mode::kSynchronous);
  const auto workload = Fig7Workload();
  wl::WorkloadDriver driver(&sim, &system, workload, config.num_dcs);
  driver.Start();

  sim.ScheduleAt(kPhaseUs, [&] {
    system.SetPartitionSequencerDelay(kStragglerDc, kStragglerPartition,
                                      straggle_interval_us);
  });
  sim.ScheduleAt(2 * kPhaseUs, [&] {
    system.SetPartitionSequencerDelay(kStragglerDc, kStragglerPartition, 0);
  });
  sim.RunUntil(workload.duration_us);
  driver.Stop();
  sim.RunUntil(workload.duration_us + 3 * sim::kSecond);

  SeqResult result;
  const TimeSeries* timeline =
      system.tracker().VisibilityTimeline(kStragglerDc, 1);
  if (timeline != nullptr) {
    for (const double v : timeline->ValueMeans()) {
      result.visibility_ms.push_back(v / 1000.0);
    }
  }
  result.visibility_ms.resize(workload.duration_us / kWindowUs, 0.0);
  return result;
}

void Run() {
  harness::PrintBanner(
      "Figure 7: straggler impact on Eunomia (visibility dc2->dc1, added "
      "delay ms)",
      "partition 0 of dc2 contacts Eunomia at the straggling interval during "
      "t in [20s, 40s); healthy before and after");

  const auto ms10 = RunEunomia(10 * sim::kMillisecond);
  const auto ms100 = RunEunomia(100 * sim::kMillisecond);
  const auto s1 = RunEunomia(1 * sim::kSecond);

  Table table({"t (s)", "10ms straggler", "100ms straggler", "1s straggler",
               "phase"});
  for (std::size_t w = 0; w < ms10.size(); ++w) {
    const std::uint64_t t = w * kWindowUs / sim::kSecond;
    std::string phase;
    if (t < 20) {
      phase = "healthy";
    } else if (t < 40) {
      phase = "STRAGGLING";
    } else {
      phase = "healed";
    }
    table.AddRow({Table::Num(static_cast<double>(t), 0),
                  Table::Num(ms10[w], 1), Table::Num(ms100[w], 1),
                  Table::Num(s1[w], 1), phase});
  }
  table.Print();

  // Sequencer comparison.
  const auto seq = RunSequencer(100 * sim::kMillisecond);
  double healthy_vis = 0.0;
  double straggle_vis = 0.0;
  int healthy_n = 0;
  int straggle_n = 0;
  for (std::size_t w = 0; w < seq.visibility_ms.size(); ++w) {
    const std::uint64_t t = w * kWindowUs / sim::kSecond;
    if (t >= 20 && t < 40) {
      straggle_vis += seq.visibility_ms[w];
      ++straggle_n;
    } else if (t < 20) {
      healthy_vis += seq.visibility_ms[w];
      ++healthy_n;
    }
  }
  std::printf(
      "\nsequencer-based comparison (100 ms straggler on the partition -> "
      "sequencer path):\n  dc2->dc1 visibility, healthy phase: %.1f ms; "
      "straggling phase: %.1f ms\n",
      healthy_n ? healthy_vis / healthy_n : 0.0,
      straggle_n ? straggle_vis / straggle_n : 0.0);
  std::printf(
      "  => as in the paper, a sequencer keeps healthy-partition visibility "
      "unaffected, but clients of the\n     straggling partition pay the "
      "whole straggling interval in *operation latency* on every update.\n");
  std::printf(
      "\npaper reference: Eunomia delays visibility of updates from the "
      "straggler's datacenter proportionally\nto the straggler's "
      "communication interval, and recovers immediately after healing.\n");
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  // No flags yet; the shared parser still rejects typos loudly.
  eunomia::bench::Flags flags(argc, argv, {});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  eunomia::Run();
  return 0;
}
