// Ablation A1 — the §6 design choice: which ordered buffer backs Eunomia?
//
// "At its core, Eunomia is implemented using a red-black tree ... For our
// particular case, the red-black tree turned out to be more efficient than
// other self-balancing binary search trees such as AVL trees."
//
// This bench reproduces that comparison on Eunomia's actual access pattern:
// mostly-ascending timestamped inserts from N interleaved partition streams,
// punctuated by periodic ExtractUpTo(stable_time) bulk removals. std::map
// (the library red-black tree) is included as a sanity reference.
//
// Two tiers:
//   - BM_OrdBuf*: the three OrderedBuffer policies (src/ordbuf/) driven
//     through the concept interface the core actually uses — per-partition
//     monotone Append + emit-callback ExtractUpTo. This is the three-way
//     A1 comparison: the paper's red-black tree, the AVL also-ran, and the
//     PartitionRunBuffer fast path that exploits Property 2 (O(1) ring
//     appends + tournament-merge extraction).
//   - BM_RedBlackTree/BM_AvlTree/BM_StdMap: the raw trees through their
//     Insert/ExtractUpTo interface, kept as the historical §6 comparison.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "src/common/random.h"
#include "src/eunomia/op.h"
#include "src/ordbuf/avl_buffer.h"
#include "src/ordbuf/partition_run_buffer.h"
#include "src/ordbuf/rbtree_buffer.h"
#include "src/rbtree/avl_tree.h"
#include "src/rbtree/red_black_tree.h"

namespace eunomia {
namespace {

// Generates the Eunomia workload: per-partition monotone timestamps with
// small cross-partition skew, so the global insert order is only *roughly*
// ascending — exactly what the service sees.
struct StreamGen {
  explicit StreamGen(std::uint32_t partitions, std::uint64_t seed)
      : next(partitions, 1), rng(seed) {}

  OpOrderKey NextKey() {
    const auto p = static_cast<PartitionId>(rng.NextBounded(next.size()));
    next[p] += 1 + rng.NextBounded(8);
    return OpOrderKey{next[p], p};
  }

  Timestamp MinFrontier() const {
    Timestamp lo = kTimestampMax;
    for (const Timestamp t : next) {
      lo = std::min(lo, t);
    }
    return lo;
  }

  std::vector<Timestamp> next;
  Rng rng;
};

constexpr int kBatch = 64;          // inserts between stabilizations
constexpr std::uint32_t kParts = 32;

template <typename Tree>
void RunInsertExtract(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Tree tree;
    StreamGen gen(kParts, 42);
    std::vector<std::pair<OpOrderKey, std::uint64_t>> out;
    state.ResumeTiming();
    for (int round = 0; round < static_cast<int>(state.range(0)); ++round) {
      for (int i = 0; i < kBatch; ++i) {
        tree.Insert(gen.NextKey(), 0);
      }
      out.clear();
      tree.ExtractUpTo(OpOrderKey{gen.MinFrontier(), ~PartitionId{0}}, &out);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.counters["ops"] = benchmark::Counter(
      static_cast<double>(state.range(0)) * kBatch *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_RedBlackTree(benchmark::State& state) {
  RunInsertExtract<RedBlackTree<OpOrderKey, std::uint64_t>>(state);
}
void BM_AvlTree(benchmark::State& state) {
  RunInsertExtract<AvlTree<OpOrderKey, std::uint64_t>>(state);
}

// std::map adapter with the same interface subset.
class StdMapBuffer {
 public:
  bool Insert(const OpOrderKey& k, std::uint64_t v) {
    return map_.emplace(k, v).second;
  }
  std::size_t ExtractUpTo(const OpOrderKey& bound,
                          std::vector<std::pair<OpOrderKey, std::uint64_t>>* out) {
    std::size_t n = 0;
    auto it = map_.begin();
    while (it != map_.end() && !(bound < it->first)) {
      out->emplace_back(it->first, it->second);
      it = map_.erase(it);
      ++n;
    }
    return n;
  }

 private:
  std::map<OpOrderKey, std::uint64_t> map_;
};

void BM_StdMap(benchmark::State& state) { RunInsertExtract<StdMapBuffer>(state); }

BENCHMARK(BM_RedBlackTree)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AvlTree)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StdMap)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

// --- the three-way OrderedBuffer policy comparison ---------------------------
// Same workload shape, but through the concept interface EunomiaCore uses:
// per-partition monotone Append, periodic emit-callback extraction at the
// partition frontier. This is the number the §6 design choice actually
// gates: stabilizer insert+extract throughput.

template <typename Buffer>
void RunBufferInsertExtract(benchmark::State& state) {
  const auto partitions = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    Buffer buf(partitions);
    StreamGen gen(partitions, 42);
    std::vector<std::uint64_t> out;
    state.ResumeTiming();
    for (int round = 0; round < static_cast<int>(state.range(0)); ++round) {
      for (int i = 0; i < kBatch; ++i) {
        buf.Append(gen.NextKey(), 0);
      }
      out.clear();
      buf.ExtractUpTo(OpOrderKey{gen.MinFrontier(), ~PartitionId{0}},
                      [&out](const OpOrderKey&, std::uint64_t&& v) {
                        out.push_back(v);
                      });
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.counters["ops"] = benchmark::Counter(
      static_cast<double>(state.range(0)) * kBatch *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_OrdBufRbTree(benchmark::State& state) {
  RunBufferInsertExtract<ordbuf::RbTreeBuffer<std::uint64_t>>(state);
}
void BM_OrdBufAvl(benchmark::State& state) {
  RunBufferInsertExtract<ordbuf::AvlBuffer<std::uint64_t>>(state);
}
void BM_OrdBufPartitionRun(benchmark::State& state) {
  RunBufferInsertExtract<ordbuf::PartitionRunBuffer<std::uint64_t>>(state);
}

// Args: {rounds, partitions}. 32 partitions matches the historical tree
// bench; 60 is the paper's Fig. 2 saturation point.
BENCHMARK(BM_OrdBufRbTree)
    ->Args({256, 32})->Args({1024, 32})->Args({1024, 60})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OrdBufAvl)
    ->Args({256, 32})->Args({1024, 32})->Args({1024, 60})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OrdBufPartitionRun)
    ->Args({256, 32})->Args({1024, 32})->Args({1024, 60})
    ->Unit(benchmark::kMillisecond);

// Pure ascending-insert throughput (the degenerate hot path when one
// partition dominates).
template <typename Tree>
void RunAscending(benchmark::State& state) {
  for (auto _ : state) {
    Tree tree;
    for (std::uint64_t i = 1; i <= 100000; ++i) {
      tree.Insert(OpOrderKey{i, 0}, 0);
    }
    benchmark::DoNotOptimize(&tree);
  }
  state.counters["inserts"] =
      benchmark::Counter(100000.0 * state.iterations(), benchmark::Counter::kIsRate);
}

void BM_RedBlackAscending(benchmark::State& state) {
  RunAscending<RedBlackTree<OpOrderKey, std::uint64_t>>(state);
}
void BM_AvlAscending(benchmark::State& state) {
  RunAscending<AvlTree<OpOrderKey, std::uint64_t>>(state);
}
BENCHMARK(BM_RedBlackAscending)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AvlAscending)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eunomia

BENCHMARK_MAIN();
