// Shared command-line parsing for the bench binaries.
//
// Every self-driving benchmark accepts GNU-style flags, either boolean
// (`--smoke`) or key=value (`--transport=tcp`), declared up front so a typo
// is a usage error instead of a silent no-op. ablation_ordered_buffer is
// the one exception: it is a Google Benchmark binary and keeps that
// framework's own argv handling.
//
// Usage:
//   int main(int argc, char** argv) {
//     eunomia::bench::Flags flags(argc, argv, {"smoke", "transport"});
//     if (!flags.ok()) return flags.FailUsage();
//     ... flags.smoke(), flags.Get("transport", "inproc") ...
//   }
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eunomia::bench {

class Flags {
 public:
  Flags(int argc, char** argv,
        std::initializer_list<std::string_view> known) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
        error_ = "unexpected argument '" + std::string(arg) + "'";
        break;
      }
      arg.remove_prefix(2);
      std::string_view name = arg;
      std::string value;
      const std::size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        name = arg.substr(0, eq);
        value = std::string(arg.substr(eq + 1));
      }
      bool recognized = false;
      for (const std::string_view candidate : known) {
        if (name == candidate) {
          recognized = true;
          break;
        }
      }
      if (!recognized) {
        error_ = "unknown flag --" + std::string(name);
        break;
      }
      values_.emplace_back(std::string(name), std::move(value));
    }
    if (!error_.empty()) {
      error_ += " (known flags:";
      if (known.size() == 0) {
        error_ += " none";
      }
      for (const std::string_view candidate : known) {
        error_ += " --" + std::string(candidate);
      }
      error_ += ")";
    }
  }

  bool ok() const { return error_.empty(); }

  // Prints the parse error to stderr; returns the conventional usage-error
  // exit code for main() to propagate.
  int FailUsage() const {
    std::fprintf(stderr, "%s\n", error_.c_str());
    return 2;
  }

  bool Has(std::string_view name) const {
    for (const auto& [key, value] : values_) {
      if (key == name) {
        return true;
      }
    }
    return false;
  }

  std::string Get(std::string_view name, std::string_view def) const {
    for (const auto& [key, value] : values_) {
      if (key == name) {
        return value;
      }
    }
    return std::string(def);
  }

  std::uint64_t GetUint(std::string_view name, std::uint64_t def) const {
    for (const auto& [key, value] : values_) {
      if (key == name) {
        char* end = nullptr;
        const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
        return (end != value.c_str() && *end == '\0') ? parsed : def;
      }
    }
    return def;
  }

  // The one flag every self-driving bench understands: a seconds-scale run
  // for CI instead of the full figure.
  bool smoke() const { return Has("smoke"); }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
  std::string error_;
};

}  // namespace eunomia::bench
