// Figure 3 — "Maximum throughput achieved by a fault-tolerant version of
// Eunomia and sequencers", normalized against the non-fault-tolerant
// versions.
//
// Simulated with the same direct-connection setup as Fig. 2 (60 partitions
// / clients). The fault-tolerance mechanics follow §3.3 and §7.1:
//
//   - FT Eunomia: partitions fan each batch out to every replica; each
//     replica deduplicates (Alg. 4 NEW_BATCH) and acknowledges; only the
//     leader stabilizes and additionally broadcasts StableTime to the
//     followers. Replicas never coordinate — "their results are independent
//     of relative order of inputs" — so the leader's extra work is just the
//     per-batch ack/dedup bookkeeping: a small constant penalty, nearly
//     independent of the replica count (~9% in the paper).
//
//   - Chain-replicated sequencer: every grant traverses the chain before
//     the client unblocks; the head must forward each request, so the
//     per-grant service cost rises and the ceiling drops (~33% in the
//     paper).
// A native section at the end drives the real multithreaded services
// (bench/service_driver.h): the sharded non-FT EunomiaService at
// num_shards = 1 and 4 against the 3-replica FtEunomiaService, so the FT
// overhead and the shard-scaling headroom are measured on the same workload.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/flags.h"
#include "bench/service_driver.h"
#include "src/eunomia/replica.h"
#include "src/eunomia/service.h"
#include "src/harness/table.h"
#include "src/sim/network.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace eunomia {
namespace {

using harness::Table;

constexpr std::uint32_t kPartitions = 60;
constexpr sim::SimTime kIngestCost = 2;      // us per op ingested
constexpr sim::SimTime kEmitCost = 1;        // us per op emitted
constexpr sim::SimTime kAckCost = 2;         // us per batch: dedup + ack (FT)
constexpr sim::SimTime kSeqGrantCost = 18;   // us per sequencer grant
constexpr sim::SimTime kChainStageCost = 27; // grant + forward at each stage
constexpr sim::SimTime kIntraHop = 150;
constexpr std::uint64_t kClientGenIntervalUs = 156;
constexpr std::uint64_t kBatchIntervalUs = 1000;
constexpr std::uint64_t kRunUs = 10 * sim::kSecond;

// FT Eunomia with R replicas; replicas == 0 selects the non-FT code path
// (single instance, no acks).
double SimulateEunomiaFt(std::uint32_t num_replicas) {
  const bool ft = num_replicas > 0;
  const std::uint32_t instances = ft ? num_replicas : 1;
  sim::Simulator sim(11);
  sim::NetworkConfig net_config;
  net_config.intra_dc_one_way_us = kIntraHop;
  net_config.wan_one_way_us = {{0}};
  sim::Network net(&sim, net_config);

  struct ReplicaNode {
    std::unique_ptr<sim::Server> server;
    std::unique_ptr<EunomiaReplica> logic;
    sim::EndpointId ep = 0;
  };
  std::vector<ReplicaNode> replicas(instances);
  for (std::uint32_t r = 0; r < instances; ++r) {
    replicas[r].server = std::make_unique<sim::Server>(&sim);
    replicas[r].logic = std::make_unique<EunomiaReplica>(r, kPartitions);
    replicas[r].ep = net.Register(0);
  }
  std::uint64_t stabilized = 0;

  struct Producer {
    sim::EndpointId ep;
    Timestamp next_ts = 1;
    std::vector<OpRecord> batch;
  };
  std::vector<Producer> producers(kPartitions);
  // Each driver's function captures the shared_ptr that owns it; the
  // cycles are broken by hand after the run.
  std::vector<std::shared_ptr<std::function<void()>>> drivers;
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    producers[p].ep = net.Register(0);
    auto generate = std::make_shared<std::function<void()>>();
    drivers.push_back(generate);
    *generate = [&, p, generate]() {
      Producer& prod = producers[p];
      prod.batch.push_back(
          OpRecord{prod.next_ts, static_cast<PartitionId>(p), 0, 0});
      prod.next_ts += kClientGenIntervalUs;
      sim.ScheduleAfter(kClientGenIntervalUs, *generate);
    };
    sim.ScheduleAfter(p % kClientGenIntervalUs, *generate);

    auto flush = std::make_shared<std::function<void()>>();
    drivers.push_back(flush);
    *flush = [&, p, flush]() {
      Producer& prod = producers[p];
      if (!prod.batch.empty()) {
        auto batch = std::make_shared<std::vector<OpRecord>>(std::move(prod.batch));
        prod.batch.clear();
        // Fan out to every replica (one copy per replica).
        for (std::uint32_t r = 0; r < instances; ++r) {
          net.Send(prod.ep, replicas[r].ep, [&, r, p, batch] {
            ReplicaNode& node = replicas[r];
            const auto cost =
                kIngestCost * static_cast<sim::SimTime>(batch->size()) +
                (ft ? kAckCost : 0);
            node.server->Submit(cost, [&, r, p, batch] {
              // NEW_BATCH: dedup + cumulative ack (ack message modeled by
              // the kAckCost charge; in-process channels do not lose it).
              replicas[r].logic->NewBatch(*batch, static_cast<PartitionId>(p));
            });
          });
        }
      }
      sim.ScheduleAfter(kBatchIntervalUs, *flush);
    };
    sim.ScheduleAfter(kBatchIntervalUs, *flush);
  }

  // Leader (replica 0) stabilizes every 0.5 ms and notifies followers.
  std::vector<OpRecord> out;
  auto stabilize = std::make_shared<std::function<void()>>();
  drivers.push_back(stabilize);
  *stabilize = [&, stabilize]() {
    out.clear();
    const auto result = replicas[0].logic->ProcessStable(&out);
    if (result.emitted > 0) {
      stabilized += result.emitted;
      sim::SimTime cost =
          kEmitCost * static_cast<sim::SimTime>(result.emitted);
      if (ft && instances > 1) {
        cost += static_cast<sim::SimTime>(instances - 1);  // STABLE broadcast
        for (std::uint32_t r = 1; r < instances; ++r) {
          net.Send(replicas[0].ep, replicas[r].ep,
                   [&, r, st = result.stable_time] {
                     replicas[r].server->Submit(1, [&, r, st] {
                       replicas[r].logic->OnStableNotice(st);
                     });
                   });
        }
      }
      replicas[0].server->Submit(cost, [] {});
    }
    sim.ScheduleAfter(500, *stabilize);
  };
  sim.ScheduleAfter(500, *stabilize);

  sim.RunUntil(kRunUs);
  for (auto& driver : drivers) {
    *driver = nullptr;
  }
  return static_cast<double>(stabilized) / (static_cast<double>(kRunUs) / 1e6);
}

// Sequencer with a chain of `stages` replicas (1 == non-FT).
double SimulateChainSequencer(std::uint32_t stages) {
  sim::Simulator sim(11);
  sim::NetworkConfig net_config;
  net_config.intra_dc_one_way_us = kIntraHop;
  net_config.wan_one_way_us = {{0}};
  sim::Network net(&sim, net_config);
  std::vector<std::unique_ptr<sim::Server>> chain;
  std::vector<sim::EndpointId> eps;
  for (std::uint32_t s = 0; s < stages; ++s) {
    chain.push_back(std::make_unique<sim::Server>(&sim));
    eps.push_back(net.Register(0));
  }
  const sim::SimTime stage_cost = stages == 1 ? kSeqGrantCost : kChainStageCost;
  std::uint64_t granted = 0;

  std::vector<std::shared_ptr<std::function<void()>>> issues;
  std::vector<std::shared_ptr<std::function<void(std::uint32_t)>>> hops;
  for (std::uint32_t c = 0; c < kPartitions; ++c) {
    const sim::EndpointId client_ep = net.Register(0);
    auto issue = std::make_shared<std::function<void()>>();
    issues.push_back(issue);
    // Forward through the chain stage by stage, reply from the tail.
    auto hop = std::make_shared<std::function<void(std::uint32_t)>>();
    hops.push_back(hop);
    *hop = [&, client_ep, issue, hop](std::uint32_t stage) {
      chain[stage]->Submit(stage_cost, [&, client_ep, stage, issue, hop] {
        if (stage + 1 < chain.size()) {
          net.Send(eps[stage], eps[stage + 1],
                   [hop, stage] { (*hop)(stage + 1); });
        } else {
          net.Send(eps[stage], client_ep, [&, issue] {
            ++granted;
            (*issue)();
          });
        }
      });
    };
    *issue = [&, client_ep, hop]() {
      net.Send(client_ep, eps[0], [hop] { (*hop)(0); });
    };
    sim.ScheduleAfter(c, *issue);
  }
  sim.RunUntil(kRunUs);
  // issue and hop reference each other as well as themselves; clear both.
  for (auto& issue : issues) {
    *issue = nullptr;
  }
  for (auto& hop : hops) {
    *hop = nullptr;
  }
  return static_cast<double>(granted) / (static_cast<double>(kRunUs) / 1e6);
}

// Native multithreaded services under the same fixed load: non-FT with the
// num_shards knob, FT with 3 replicas. Returns false if any service failed
// to stabilize its load, so the binary can go red instead of printing zeros.
bool RunNativeServices() {
  bench::FixedLoad load;
  load.num_partitions = 12;
  load.ops_per_partition = 100'000;
  std::printf(
      "\nnative services, same fixed load (%u partitions x %llu ops):\n",
      load.num_partitions,
      static_cast<unsigned long long>(load.ops_per_partition));
  const double non_ft_1 = bench::MeasureShardedThroughput(1, load);
  const double non_ft_4 = bench::MeasureShardedThroughput(4, load);
  double ft3 = 0.0;
  {
    FtEunomiaService::Options options;
    options.num_partitions = load.num_partitions;
    options.num_replicas = 3;
    options.stable_period_us = 200;
    FtEunomiaService service(options);
    ft3 = bench::MeasureStabilizedThroughput(service, load);
  }
  Table table({"service", "stabilized (kops/s)", "vs non-FT 1-shard"});
  table.AddRow({"EunomiaService num_shards=1", Table::Num(non_ft_1 / 1000.0, 0),
                "1.00"});
  table.AddRow({"EunomiaService num_shards=4", Table::Num(non_ft_4 / 1000.0, 0),
                non_ft_1 > 0 ? Table::Num(non_ft_4 / non_ft_1, 2) : "n/a"});
  table.AddRow({"FtEunomiaService 3 replicas", Table::Num(ft3 / 1000.0, 0),
                non_ft_1 > 0 ? Table::Num(ft3 / non_ft_1, 2) : "n/a"});
  table.Print();
  const bool converged = non_ft_1 > 0.0 && non_ft_4 > 0.0 && ft3 > 0.0;
  if (!converged) {
    std::printf("ERROR: a native service did not stabilize its load\n");
  }
  return converged;
}

int Run() {
  harness::PrintBanner(
      "Figure 3: fault-tolerance overhead (normalized per family)",
      "60 partitions/clients; Eunomia replicas never coordinate, chain "
      "sequencer replicas process every grant in order");

  const double eunomia_base = SimulateEunomiaFt(0);
  const double seq_base = SimulateChainSequencer(1);

  Table table({"service", "throughput (kops/s)", "normalized vs own non-FT"});
  table.AddRow({"Eunomia Non-FT", Table::Num(eunomia_base / 1000.0, 0), "1.00"});
  double ft3 = 0.0;
  for (const std::uint32_t replicas : {1u, 2u, 3u}) {
    const double tput = SimulateEunomiaFt(replicas);
    if (replicas == 3) {
      ft3 = tput;
    }
    table.AddRow({"Eunomia " + std::to_string(replicas) + "-FT",
                  Table::Num(tput / 1000.0, 0),
                  Table::Num(tput / eunomia_base, 2)});
  }
  table.AddRow({"Sequencer Non-FT", Table::Num(seq_base / 1000.0, 0), "1.00"});
  const double chain = SimulateChainSequencer(3);
  table.AddRow({"Sequencer 3-FT (chain)", Table::Num(chain / 1000.0, 0),
                Table::Num(chain / seq_base, 2)});
  table.Print();
  std::printf(
      "\npaper reference: FT Eunomia loses ~9%% (roughly independent of the "
      "replica count); the 3-replica chain\nsequencer loses ~33%%. measured: "
      "Eunomia 3-FT %.2f, chain %.2f of their non-FT baselines\n",
      ft3 / eunomia_base, chain / seq_base);

  return RunNativeServices() ? 0 : 1;
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  // No flags yet; the shared parser still rejects typos loudly.
  eunomia::bench::Flags flags(argc, argv, {});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  return eunomia::Run();
}
