// Metrics overhead — what always-on observability costs the ordering
// service.
//
// Drives the fig2 fixed-load race (producers x batched ops through the
// native EunomiaService, measuring stabilized ops/sec) three ways:
//
//   off        Options::metrics = nullptr — zero instrumentation, the fig2
//              baseline
//   on         a Registry attached; per-shard counters, partition frontier
//              lag, ordbuf occupancy and merge depth mirrored once per tick
//   on+scrape  same, plus a thread rendering the text exposition every 5 ms
//              (a scraper far more aggressive than any real Prometheus)
//
// The acceptance bar is the `on` configuration at one shard: the per-tick
// delta-mirroring design is supposed to make metrics free enough to leave
// enabled everywhere, which this gate pins at <=2% CPU-normalized overhead.
// Reps are interleaved and order-rotated as in bench/wal_overhead (see the
// long comment there for why wall clock alone cannot be trusted on a
// shared host), and the suite carries a null configuration — `off2`, a
// second identical baseline — whose apparent overhead is pure measurement
// noise. The gate only fails when the instrumented overhead exceeds the
// budget by more than that measured noise floor: on a single shared core
// the benchmark's own jitter was observed swinging past 2% in both
// directions, and a gate that cannot pass its own null experiment is a
// coin flip, not a gate. `on+scrape` is reported for calibration, not
// gated.
//
// Emits BENCH_metrics.json in the working directory so CI can archive the
// observability-cost trajectory. `--smoke` shrinks the load for CI; full
// mode is the committed artifact.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bench/flags.h"
#include "bench/service_driver.h"
#include "src/eunomia/service.h"
#include "src/harness/table.h"
#include "src/metrics/registry.h"

namespace eunomia {
namespace {

using harness::Table;

struct MetricsPoint {
  const char* config;
  std::uint32_t shards = 1;
  double ops_per_sec = 0.0;      // wall clock, hostage to neighbors
  double ops_per_cpu_sec = 0.0;  // process CPU time: the real cost
  std::uint64_t series = 0;      // registered series after the run
};

double ProcessCpuSeconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

bench::FixedLoad MakeLoad(bool smoke) {
  bench::FixedLoad load;
  load.num_partitions = smoke ? 8 : 16;
  // 3x the fig2 load: a 2% budget needs each measured window long enough
  // that scheduler luck (this host shares its cores) averages out within a
  // single run, not just across reps.
  load.ops_per_partition = smoke ? 5'000 : 300'000;
  return load;
}

enum class Mode { kOff, kOn, kOnScrape };

struct RunResult {
  double ops_per_sec = 0.0;  // 0.0: failed to converge
  double ops_per_cpu_sec = 0.0;
  std::uint64_t series = 0;
};

RunResult MeasureRun(Mode mode, std::uint32_t shards,
                     const bench::FixedLoad& load) {
  RunResult result;
  // A fresh registry per run so registration cost is inside the measured
  // window, exactly as it is for a freshly started eunomiad.
  metrics::Registry registry;
  EunomiaService::Options options;
  options.num_partitions = load.num_partitions;
  options.num_shards = shards;
  options.stable_period_us = 200;
  if (mode != Mode::kOff) {
    options.metrics = &registry;
  }
  std::atomic<bool> stop_scraper{false};
  std::thread scraper;
  {
    EunomiaService service(options);
    if (mode == Mode::kOnScrape) {
      scraper = std::thread([&registry, &stop_scraper] {
        while (!stop_scraper.load(std::memory_order_relaxed)) {
          const std::string exposition = registry.TextExposition();
          (void)exposition;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      });
    }
    const double cpu_before = ProcessCpuSeconds();
    result.ops_per_sec = bench::MeasureStabilizedThroughput(service, load);
    const double cpu_spent = ProcessCpuSeconds() - cpu_before;
    if (result.ops_per_sec > 0.0 && cpu_spent > 0.0) {
      const double total_ops = static_cast<double>(load.num_partitions) *
                               static_cast<double>(load.ops_per_partition);
      result.ops_per_cpu_sec = total_ops / cpu_spent;
    }
  }
  if (scraper.joinable()) {
    stop_scraper.store(true, std::memory_order_relaxed);
    scraper.join();
  }
  result.series = registry.size();
  return result;
}

int Run(bool smoke) {
  harness::PrintBanner(
      "Metrics overhead: instrumented vs bare service throughput",
      "fig2 fixed-load race, single shard; the <=2% gate is what lets "
      "metrics stay on in production");
  const bench::FixedLoad load = MakeLoad(smoke);
  const std::vector<std::uint32_t> shard_counts =
      smoke ? std::vector<std::uint32_t>{1u}
            : std::vector<std::uint32_t>{1u, 4u};

  struct Config {
    const char* name;
    Mode mode;
  };
  // `off2` is a second, identical copy of the baseline: its measured
  // "overhead" vs `off` is pure measurement noise, and the gate treats it
  // as the noise floor — on a shared single-core host, a 2% budget is
  // smaller than the run-to-run jitter of the benchmark itself, so a
  // breach only counts when it exceeds budget + floor.
  const Config configs[] = {
      {"off", Mode::kOff},
      {"on", Mode::kOn},
      {"on+scrape", Mode::kOnScrape},
      {"off2", Mode::kOff},
  };

  std::printf("\n%u producer partitions race %llu ops each per configuration\n",
              load.num_partitions,
              static_cast<unsigned long long>(load.ops_per_partition));
  Table table({"metrics", "num_shards", "stabilized (kops/s)", "vs off",
               "kops/cpu-s", "cpu vs off", "series"});
  std::vector<MetricsPoint> points;
  bool all_converged = true;
  double on_overhead_1shard = 0.0;
  double noise_floor_1shard = 0.0;
  constexpr int kReps = 9;
  constexpr std::size_t kNumConfigs = std::size(configs);
  for (const std::uint32_t shards : shard_counts) {
    // Interleaved reps + per-rep ratios + median, for the reasons spelled
    // out in bench/wal_overhead.cc: both sides of each ratio must see the
    // same neighbor interference, and the median drops the reps where they
    // didn't. A 2% budget needs two extra precautions that a 15% one does
    // not: a discarded warm-up (the first service of the process pays for
    // page faults and frequency ramp, and that bill must not land on any
    // measured config) and a rotated within-rep order (whichever config
    // runs first after an idle wait sees a different cache/frequency state;
    // rotation spreads that position bias across all configs instead of
    // crediting it to the baseline every rep).
    RunResult runs[kNumConfigs][kReps] = {};
    (void)MeasureRun(Mode::kOff, shards, load);
    for (int rep = 0; rep < kReps; ++rep) {
      for (std::size_t i = 0; i < kNumConfigs; ++i) {
        const std::size_t c = (i + static_cast<std::size_t>(rep)) % kNumConfigs;
        runs[c][rep] = MeasureRun(configs[c].mode, shards, load);
        if (runs[c][rep].ops_per_sec <= 0.0) {
          all_converged = false;
        }
      }
    }
    const auto median = [](std::vector<double>& v) {
      if (v.empty()) {
        return 0.0;
      }
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    for (std::size_t c = 0; c < kNumConfigs; ++c) {
      RunResult best;
      std::vector<double> ratios;
      std::vector<double> cpu_ratios;
      for (int rep = 0; rep < kReps; ++rep) {
        const RunResult& run = runs[c][rep];
        const RunResult& base = runs[0][rep];  // configs[0] is metrics=off
        if (run.ops_per_sec > best.ops_per_sec) {
          best.ops_per_sec = run.ops_per_sec;
          best.series = run.series;
        }
        if (run.ops_per_cpu_sec > best.ops_per_cpu_sec) {
          best.ops_per_cpu_sec = run.ops_per_cpu_sec;
        }
        if (base.ops_per_sec > 0 && run.ops_per_sec > 0) {
          ratios.push_back(run.ops_per_sec / base.ops_per_sec);
        }
        if (base.ops_per_cpu_sec > 0 && run.ops_per_cpu_sec > 0) {
          cpu_ratios.push_back(run.ops_per_cpu_sec / base.ops_per_cpu_sec);
        }
      }
      const double relative = median(ratios);
      const double cpu_relative = median(cpu_ratios);
      if (shards == 1) {
        if (configs[c].mode == Mode::kOn && c == 1) {
          on_overhead_1shard = 1.0 - cpu_relative;
        } else if (c == kNumConfigs - 1) {  // off2, the null measurement
          noise_floor_1shard = std::abs(1.0 - cpu_relative);
        }
      }
      points.push_back({configs[c].name, shards, best.ops_per_sec,
                        best.ops_per_cpu_sec, best.series});
      table.AddRow(
          {configs[c].name, Table::Num(shards, 0),
           Table::Num(best.ops_per_sec / 1000.0, 0),
           c != 0 ? Table::Num(relative * 100.0, 1) + "%" : "100%",
           Table::Num(best.ops_per_cpu_sec / 1000.0, 0),
           c != 0 ? Table::Num(cpu_relative * 100.0, 1) + "%" : "100%",
           Table::Num(best.series, 0)});
    }
  }
  table.Print();
  const bool over_budget =
      on_overhead_1shard > 0.02 + noise_floor_1shard;
  std::printf(
      "\nsingle-shard metrics-on CPU overhead vs bare: %.1f%% "
      "(measurement noise floor %.1f%%) %s\n",
      on_overhead_1shard * 100.0, noise_floor_1shard * 100.0,
      over_budget ? "(OVER the 2%% budget)" : "(within the 2%% budget)");

  std::FILE* f = std::fopen("BENCH_metrics.json", "w");
  if (f == nullptr) {
    std::printf("WARNING: could not write BENCH_metrics.json\n");
  } else {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"figure\": \"metrics_overhead\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"num_partitions\": %u,\n", load.num_partitions);
    std::fprintf(f, "  \"ops_per_partition\": %llu,\n",
                 static_cast<unsigned long long>(load.ops_per_partition));
    std::fprintf(f, "  \"on_overhead_1shard\": %.4f,\n", on_overhead_1shard);
    std::fprintf(f, "  \"noise_floor_1shard\": %.4f,\n", noise_floor_1shard);
    std::fprintf(f, "  \"overhead_metric\": \"cpu_time\",\n");
    std::fprintf(f, "  \"series\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(f,
                   "    {\"metrics\": \"%s\", \"shards\": %u, "
                   "\"mops_per_s\": %.3f, \"cpu_mops_per_s\": %.3f, "
                   "\"registered_series\": %llu}%s\n",
                   points[i].config, points[i].shards,
                   points[i].ops_per_sec / 1e6, points[i].ops_per_cpu_sec / 1e6,
                   static_cast<unsigned long long>(points[i].series),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_metrics.json (%zu points)\n", points.size());
  }
  if (!all_converged) {
    std::printf("ERROR: a configuration did not stabilize its load\n");
    return 1;
  }
  if (over_budget) {
    if (smoke) {
      // The smoke load is far too small for the budget to be resolvable;
      // the number above is advisory and only non-convergence fails CI.
      // The committed full-mode BENCH_metrics.json is the actual gate.
      std::printf("WARNING: over budget on a smoke load (advisory only)\n");
    } else {
      std::printf("ERROR: metrics-on overhead breaches the 2%% budget\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  eunomia::bench::Flags flags(argc, argv, {"smoke"});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  return eunomia::Run(flags.smoke());
}
