// Figure 4 — "Impact of failures in Eunomia."
//
// The paper runs 1-, 2- and 3-replica fault-tolerant Eunomia deployments,
// crashes one replica mid-run and a second one later, and plots throughput
// over time normalized to the non-fault-tolerant service:
//   - 1-FT drops to zero after the first crash (no replicas left);
//   - 2-FT survives the first crash (brief fluctuation, then ~95% of
//     non-FT) and dies at the second;
//   - 3-FT survives both and recovers to full throughput within seconds.
//
// Our timeline is scaled down (12 s instead of 700 s; crashes at t=4 s and
// t=8 s — halved again under --smoke); the crashed replica is the current
// leader each time, forcing a takeover. --smoke also emits the same
// BENCH_fig4.json the full run writes, so CI can archive the timeline.
#include <cstdio>
#include <string>
#include <vector>
#include "src/common/sync.h"

#include "bench/flags.h"
#include "bench/service_driver.h"
#include "src/common/stats.h"
#include "src/eunomia/service.h"
#include "src/harness/table.h"

namespace eunomia {
namespace {

using harness::Table;

// Low offered load on purpose: this experiment is about the throughput
// *timeline* around crashes (drop to zero vs seamless takeover), not about
// the service ceiling, so it stays meaningful on small machines.
constexpr std::uint32_t kPartitions = 4;

// Timeline scale; --smoke halves every edge so the whole figure (four runs)
// fits in well under a minute of CI time.
struct Scale {
  std::uint64_t duration_us;
  std::uint64_t first_crash_us;
  std::uint64_t second_crash_us;
  std::uint64_t window_us;
};

Scale ScaleFor(bool smoke) {
  if (smoke) {
    return {6'000'000, 2'000'000, 4'000'000, 500'000};
  }
  return {12'000'000, 4'000'000, 8'000'000, 1'000'000};
}

std::vector<double> MeasureTimeline(const Scale& scale, std::uint32_t replicas,
                                    bool inject_failures) {
  FtEunomiaService::Options options;
  options.num_partitions = kPartitions;
  options.num_replicas = replicas;
  options.stable_period_us = 500;

  const std::uint64_t start = bench::NowMicros();
  TimeSeries timeline(scale.window_us);
  eunomia::sync::Mutex mu{"fig4_failures::mu", eunomia::sync::kRankLeaf};
  options.sink = [&](const std::vector<OpRecord>& ops) {
    eunomia::sync::MutexLock lock(mu);
    timeline.Record(bench::NowMicros() - start, ops.size());
  };
  FtEunomiaService service(options);
  service.Start();

  std::thread crasher;
  if (inject_failures) {
    crasher = std::thread([&service, &scale, start, replicas] {
      while (bench::NowMicros() - start < scale.first_crash_us) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      service.CrashReplica(0);  // kill the leader
      while (bench::NowMicros() - start < scale.second_crash_us) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (replicas > 1) {
        service.CrashReplica(1);  // kill the new leader
      }
    });
  }

  bench::ProducerOptions load;
  load.num_partitions = kPartitions;
  load.duration_us = scale.duration_us;
  load.ops_per_batch = 20;
  bench::DriveProducers(service, load);
  if (crasher.joinable()) {
    crasher.join();
  }
  service.Stop();

  eunomia::sync::MutexLock lock(mu);
  auto rates = timeline.Rates();
  rates.resize(scale.duration_us / scale.window_us, 0.0);
  return rates;
}

void WriteBenchJson(const char* path, bool smoke, const Scale& scale,
                    double baseline_avg,
                    const std::vector<std::vector<double>>& runs) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"figure\": \"fig4_failures\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"series\": [\n");
  const std::size_t windows = scale.duration_us / scale.window_us;
  std::size_t emitted = 0;
  const std::size_t total = runs.size() * windows;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const std::string system = std::to_string(r + 1) + "-FT";
    for (std::size_t w = 0; w < windows; ++w) {
      const double rate = w < runs[r].size() ? runs[r][w] : 0.0;
      const double t_s = static_cast<double>(w * scale.window_us) / 1e6;
      const double norm = baseline_avg > 0.0 ? rate / baseline_avg : 0.0;
      ++emitted;
      std::fprintf(f,
                   "    {\"system\": \"%s\", \"workload\": \"t=%.1fs\", "
                   "\"transport\": \"native\", \"ops_per_s\": %.1f, "
                   "\"normalized\": %.3f}%s\n",
                   system.c_str(), t_s, rate, norm,
                   emitted < total ? "," : "");
    }
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu series points)\n", path, total);
}

void Run(bool smoke) {
  const Scale scale = ScaleFor(smoke);
  harness::PrintBanner(
      "Figure 4: impact of replica failures on Eunomia throughput",
      smoke ? "smoke: leader crashed at t=2s, next leader at t=4s; values "
              "normalized to the failure-free 3-replica run"
            : "leader crashed at t=4s, next leader at t=8s; values "
              "normalized to the failure-free 3-replica run");

  const auto baseline =
      MeasureTimeline(scale, 3, /*inject_failures=*/false);
  double baseline_avg = 0.0;
  for (const double r : baseline) {
    baseline_avg += r;
  }
  baseline_avg /= static_cast<double>(baseline.size());

  std::vector<std::vector<double>> runs;
  for (const std::uint32_t replicas : {1u, 2u, 3u}) {
    runs.push_back(MeasureTimeline(scale, replicas, /*inject_failures=*/true));
  }

  const double window_s = static_cast<double>(scale.window_us) / 1e6;
  Table table({"t (s)", "1-FT", "2-FT", "3-FT", "event"});
  for (std::size_t w = 0; w < scale.duration_us / scale.window_us; ++w) {
    std::string event;
    if (w == scale.first_crash_us / scale.window_us) {
      event = "<- crash replica 0 (leader)";
    } else if (w == scale.second_crash_us / scale.window_us) {
      event = "<- crash replica 1";
    }
    std::vector<std::string> row = {
        Table::Num(static_cast<double>(w) * window_s, 1)};
    for (const auto& run : runs) {
      const double norm = w < run.size() ? run[w] / baseline_avg : 0.0;
      row.push_back(Table::Num(norm, 2));
    }
    row.push_back(event);
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\npaper reference: 1-FT drops to zero at the first crash; 2-FT "
      "survives it (~95%% of non-FT) and dies at the second;\n3-FT survives "
      "both and recovers to full throughput within seconds.\n");
  WriteBenchJson("BENCH_fig4.json", smoke, scale, baseline_avg, runs);
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  eunomia::bench::Flags flags(argc, argv, {"smoke"});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  eunomia::Run(flags.smoke());
  return 0;
}
