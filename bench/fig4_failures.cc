// Figure 4 — "Impact of failures in Eunomia."
//
// The paper runs 1-, 2- and 3-replica fault-tolerant Eunomia deployments,
// crashes one replica mid-run and a second one later, and plots throughput
// over time normalized to the non-fault-tolerant service:
//   - 1-FT drops to zero after the first crash (no replicas left);
//   - 2-FT survives the first crash (brief fluctuation, then ~95% of
//     non-FT) and dies at the second;
//   - 3-FT survives both and recovers to full throughput within seconds.
//
// Our timeline is scaled down (18 s instead of 700 s; crashes at t=6 s and
// t=12 s); the crashed replica is the current leader each time, forcing a
// takeover.
#include <cstdio>
#include <mutex>
#include <vector>

#include "bench/flags.h"
#include "bench/service_driver.h"
#include "src/common/stats.h"
#include "src/eunomia/service.h"
#include "src/harness/table.h"

namespace eunomia {
namespace {

using harness::Table;

// Low offered load on purpose: this experiment is about the throughput
// *timeline* around crashes (drop to zero vs seamless takeover), not about
// the service ceiling, so it stays meaningful on small machines.
constexpr std::uint32_t kPartitions = 4;
constexpr std::uint64_t kDurationUs = 12'000'000;
constexpr std::uint64_t kFirstCrashUs = 4'000'000;
constexpr std::uint64_t kSecondCrashUs = 8'000'000;
constexpr std::uint64_t kWindowUs = 1'000'000;

std::vector<double> MeasureTimeline(std::uint32_t replicas, bool inject_failures) {
  FtEunomiaService::Options options;
  options.num_partitions = kPartitions;
  options.num_replicas = replicas;
  options.stable_period_us = 500;

  const std::uint64_t start = bench::NowMicros();
  TimeSeries timeline(kWindowUs);
  std::mutex mu;
  options.sink = [&](const std::vector<OpRecord>& ops) {
    std::lock_guard<std::mutex> lock(mu);
    timeline.Record(bench::NowMicros() - start, ops.size());
  };
  FtEunomiaService service(options);
  service.Start();

  std::thread crasher;
  if (inject_failures) {
    crasher = std::thread([&service, start, replicas] {
      while (bench::NowMicros() - start < kFirstCrashUs) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      service.CrashReplica(0);  // kill the leader
      while (bench::NowMicros() - start < kSecondCrashUs) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (replicas > 1) {
        service.CrashReplica(1);  // kill the new leader
      }
    });
  }

  bench::ProducerOptions load;
  load.num_partitions = kPartitions;
  load.duration_us = kDurationUs;
  load.ops_per_batch = 20;
  bench::DriveProducers(service, load);
  if (crasher.joinable()) {
    crasher.join();
  }
  service.Stop();

  std::lock_guard<std::mutex> lock(mu);
  auto rates = timeline.Rates();
  rates.resize(kDurationUs / kWindowUs, 0.0);
  return rates;
}

void Run() {
  harness::PrintBanner(
      "Figure 4: impact of replica failures on Eunomia throughput",
      "leader crashed at t=4s, next leader at t=8s; values normalized to "
      "the failure-free 3-replica run");

  const auto baseline = MeasureTimeline(3, /*inject_failures=*/false);
  double baseline_avg = 0.0;
  for (const double r : baseline) {
    baseline_avg += r;
  }
  baseline_avg /= static_cast<double>(baseline.size());

  std::vector<std::vector<double>> runs;
  for (const std::uint32_t replicas : {1u, 2u, 3u}) {
    runs.push_back(MeasureTimeline(replicas, /*inject_failures=*/true));
  }

  Table table({"t (s)", "1-FT", "2-FT", "3-FT", "event"});
  for (std::size_t w = 0; w < kDurationUs / kWindowUs; ++w) {
    std::string event;
    if (w == kFirstCrashUs / kWindowUs) {
      event = "<- crash replica 0 (leader)";
    } else if (w == kSecondCrashUs / kWindowUs) {
      event = "<- crash replica 1";
    }
    std::vector<std::string> row = {Table::Num(static_cast<double>(w), 0)};
    for (const auto& run : runs) {
      const double norm = w < run.size() ? run[w] / baseline_avg : 0.0;
      row.push_back(Table::Num(norm, 2));
    }
    row.push_back(event);
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\npaper reference: 1-FT drops to zero at the first crash; 2-FT "
      "survives it (~95%% of non-FT) and dies at the second;\n3-FT survives "
      "both and recovers to full throughput within seconds.\n");
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  // No flags yet; the shared parser still rejects typos loudly.
  eunomia::bench::Flags flags(argc, argv, {});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  eunomia::Run();
  return 0;
}
