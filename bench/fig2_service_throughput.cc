// Figure 2 — "Maximum throughput achieved by Eunomia and an implementation
// of a sequencer. We vary the number of partitions that propagate
// operations to Eunomia."
//
// Two parts:
//
//  (1) A native single-threaded microbenchmark of the real EunomiaCore
//      (red-black-tree ingest + periodic stable extraction): this measures
//      the actual §6 C++ data path and confirms the paper's observation
//      that "the bottleneck of our Eunomia implementation is the propagation
//      to other geo-locations rather than the handling of operations".
//
//  (2) The §7.1 experiment itself, run on the deterministic simulator:
//      clients connect directly to the services, bypassing the data store
//      (each client simulates a partition). Eunomia producers batch for
//      1 ms and push asynchronously; sequencer clients issue synchronous
//      round-trips. Service costs are calibrated to the paper's measured
//      capacities (sequencer ~48 kops/s => ~18 us/grant; Eunomia
//      ~370 kops/s => ~2.7 us/op including message handling — two orders of
//      magnitude above the raw tree cost measured in part 1, i.e. the
//      propagation/messaging path dominates, as the paper states).
//
// Expected shape: the sequencer saturates at its low ceiling regardless of
// client count; Eunomia scales with offered load and plateaus near an order
// of magnitude higher (the paper reports 7.7x), with no degradation from 60
// to 75 partitions.
// A third part measures the *native multithreaded service* (the sharded
// stabilizer pipeline): producers race a fixed op count into EunomiaService
// across num_shards and ordered-buffer backends (the §6 red-black tree, the
// AVL also-ran, and the Property-2 run-queue fast path) and we report
// stabilized ops/sec — the scaling curve the sharding refactor buys plus the
// speedup the buffer policy buys on top. The scan is also emitted as
// machine-readable BENCH_fig2.json (in the working directory) so CI can
// archive the perf trajectory PR-over-PR. `--smoke` runs only that part
// with a tiny op count (CI exercises the pipeline on every push).
// A fourth part (`--transport=tcp` or `--transport=loopback`) measures the
// same fixed load submitted through the src/net/ stack — one EunomiaClient
// connection per partition into an EunomiaServer, over real loopback TCP
// sockets (or the in-process LoopbackTransport, isolating the wire-format
// cost from the kernel's) — so the throughput curve includes a real socket
// hop and lands in BENCH_fig2.json next to the in-process numbers.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/flags.h"
#include "bench/net_driver.h"
#include "bench/service_driver.h"
#include "src/metrics/metrics_server.h"
#include "src/metrics/registry.h"
#include "src/eunomia/core.h"
#include "src/eunomia/service.h"
#include "src/net/epoll_transport.h"
#include "src/net/loopback_transport.h"
#include "src/net/tcp_transport.h"
#include "src/ordbuf/ordered_buffer.h"
#include "src/harness/table.h"
#include "src/sim/network.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace eunomia {
namespace {

using harness::Table;

// --- part 1: native EunomiaCore microbenchmark -------------------------------

double MeasureCoreIngest(ordbuf::Backend backend) {
  constexpr std::uint32_t kParts = 60;
  constexpr std::uint64_t kOps = 2'000'000;
  EunomiaCore core(kParts, 0, backend);
  std::vector<Timestamp> next(kParts, 1);
  std::vector<OpRecord> out;
  out.reserve(1 << 16);
  std::uint64_t produced = 0;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t x = 88172645463325252ULL;  // xorshift for partition pick
  while (produced < kOps) {
    for (int i = 0; i < 512; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const auto p = static_cast<PartitionId>(x % kParts);
      core.AddOp(OpRecord{next[p] += 1 + (x >> 60), p, 0, 0});
      ++produced;
    }
    out.clear();
    core.ProcessStable(&out);
  }
  // Drain.
  for (PartitionId p = 0; p < kParts; ++p) {
    core.Heartbeat(p, next[p] + 1000);
  }
  out.clear();
  core.ProcessStable(&out);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  return static_cast<double>(produced) /
         (static_cast<double>(elapsed) / 1e6);
}

// --- part 2: simulated direct-connection experiment ---------------------------

// Calibrated service costs (see file comment).
constexpr sim::SimTime kEunomiaIngestCost = 2;  // us per op ingested
constexpr sim::SimTime kEunomiaEmitCost = 1;    // us per op emitted/propagated
constexpr sim::SimTime kSeqGrantCost = 18;      // us per sequencer grant
constexpr sim::SimTime kIntraHop = 150;         // one-way client <-> service
constexpr std::uint64_t kClientGenIntervalUs = 156;  // ~6.4 kops/s per client
constexpr std::uint64_t kBatchIntervalUs = 1000;     // the paper's 1 ms batches
constexpr std::uint64_t kRunUs = 10 * sim::kSecond;

double SimulateEunomia(std::uint32_t partitions) {
  sim::Simulator sim(7);
  sim::NetworkConfig net_config;
  net_config.intra_dc_one_way_us = kIntraHop;
  net_config.wan_one_way_us = {{0}};
  sim::Network net(&sim, net_config);
  sim::Server service_node(&sim);
  EunomiaCore core(partitions);
  std::uint64_t stabilized = 0;

  const sim::EndpointId service_ep = net.Register(0);
  struct Producer {
    sim::EndpointId ep;
    Timestamp next_ts = 1;
    std::vector<OpRecord> batch;
  };
  std::vector<Producer> producers(partitions);
  // Each driver's function captures the shared_ptr that owns it (so the
  // copies the scheduler takes keep it alive); the cycles are broken by
  // hand after the run.
  std::vector<std::shared_ptr<std::function<void()>>> drivers;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    producers[p].ep = net.Register(0);
    // Eager generation: one op every kClientGenIntervalUs.
    auto generate = std::make_shared<std::function<void()>>();
    drivers.push_back(generate);
    *generate = [&, p, generate]() {
      Producer& prod = producers[p];
      prod.batch.push_back(
          OpRecord{prod.next_ts, static_cast<PartitionId>(p), 0, 0});
      prod.next_ts += kClientGenIntervalUs;  // microsecond-domain hybrid time
      sim.ScheduleAfter(kClientGenIntervalUs, *generate);
    };
    sim.ScheduleAfter(p % kClientGenIntervalUs, *generate);
    // 1 ms batch flush toward the service.
    auto flush = std::make_shared<std::function<void()>>();
    drivers.push_back(flush);
    *flush = [&, p, flush]() {
      Producer& prod = producers[p];
      if (!prod.batch.empty()) {
        auto batch = std::move(prod.batch);
        prod.batch.clear();
        net.Send(prod.ep, service_ep, [&, batch = std::move(batch)] {
          service_node.Submit(
              kEunomiaIngestCost * static_cast<sim::SimTime>(batch.size()),
              [&, batch] {
                for (const OpRecord& op : batch) {
                  core.AddOp(op);
                }
              });
        });
      } else {
        const Timestamp hb = producers[p].next_ts;
        net.Send(prod.ep, service_ep, [&, p, hb] {
          service_node.Submit(1, [&, p, hb] {
            core.Heartbeat(static_cast<PartitionId>(p), hb);
          });
        });
      }
      sim.ScheduleAfter(kBatchIntervalUs, *flush);
    };
    sim.ScheduleAfter(kBatchIntervalUs, *flush);
  }
  // Stabilizer: every 0.5 ms extract the stable prefix.
  std::vector<OpRecord> out;
  auto stabilize = std::make_shared<std::function<void()>>();
  drivers.push_back(stabilize);
  *stabilize = [&, stabilize]() {
    out.clear();
    const std::size_t emitted = core.ProcessStable(&out);
    if (emitted > 0) {
      service_node.Submit(kEunomiaEmitCost * static_cast<sim::SimTime>(emitted),
                          [] {});
      stabilized += emitted;
    }
    sim.ScheduleAfter(500, *stabilize);
  };
  sim.ScheduleAfter(500, *stabilize);

  sim.RunUntil(kRunUs);
  for (auto& driver : drivers) {
    *driver = nullptr;
  }
  return static_cast<double>(stabilized) / (static_cast<double>(kRunUs) / 1e6);
}

double SimulateSequencer(std::uint32_t clients) {
  sim::Simulator sim(7);
  sim::NetworkConfig net_config;
  net_config.intra_dc_one_way_us = kIntraHop;
  net_config.wan_one_way_us = {{0}};
  sim::Network net(&sim, net_config);
  sim::Server sequencer(&sim);
  const sim::EndpointId seq_ep = net.Register(0);
  std::uint64_t granted = 0;

  std::vector<std::shared_ptr<std::function<void()>>> issues;
  for (std::uint32_t c = 0; c < clients; ++c) {
    const sim::EndpointId client_ep = net.Register(0);
    // Closed loop: request -> grant -> immediately request again. The
    // synchronous round-trip is the whole point of the comparison.
    auto issue = std::make_shared<std::function<void()>>();
    issues.push_back(issue);
    *issue = [&, client_ep, issue]() {
      net.Send(client_ep, seq_ep, [&, client_ep, issue] {
        sequencer.Submit(kSeqGrantCost, [&, client_ep, issue] {
          net.Send(seq_ep, client_ep, [&, issue] {
            ++granted;
            (*issue)();
          });
        });
      });
    };
    sim.ScheduleAfter(c, *issue);
  }
  sim.RunUntil(kRunUs);
  // Break the closed loops' self-reference cycles.
  for (auto& issue : issues) {
    *issue = nullptr;
  }
  return static_cast<double>(granted) / (static_cast<double>(kRunUs) / 1e6);
}

// --- part 3: native sharded-service scaling x buffer backend -----------------

struct ScanPoint {
  ordbuf::Backend backend;
  std::uint32_t shards;
  double ops_per_sec;
  // "inproc" for direct SubmitBatch calls, else the net transport used.
  const char* transport = "inproc";
  double ack_mean_us = -1.0;  // mean batch-ack round trip; < 0 = n/a
  // TCP I/O backend ("epoll" or "threaded"); empty for non-TCP points.
  const char* io = "";
  // Batch-ack round-trip percentiles (bucket upper bounds); < 0 = n/a.
  double ack_p50_us = -1.0;
  double ack_p95_us = -1.0;
  double ack_p99_us = -1.0;
  // True for the below-capacity paced run (1 ms batch pacing) whose ack
  // percentiles measure latency rather than saturation queueing.
  bool paced = false;
};

// The machine-readable perf-trajectory artifact CI archives on every push:
// stabilized throughput per (buffer backend, shard count).
void WriteBenchJson(const char* path, bool smoke,
                    const std::vector<ScanPoint>& points,
                    const bench::FixedLoad& load) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"figure\": \"fig2_service_throughput\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"default_backend\": \"%s\",\n",
               ordbuf::BackendName(ordbuf::Backend::kPartitionRun));
  std::fprintf(f, "  \"num_partitions\": %u,\n", load.num_partitions);
  std::fprintf(f, "  \"ops_per_partition\": %llu,\n",
               static_cast<unsigned long long>(load.ops_per_partition));
  std::fprintf(f, "  \"series\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"shards\": %u, "
                 "\"transport\": \"%s\", \"mops_per_s\": %.3f",
                 ordbuf::BackendName(points[i].backend), points[i].shards,
                 points[i].transport, points[i].ops_per_sec / 1e6);
    if (points[i].io[0] != '\0') {
      std::fprintf(f, ", \"io\": \"%s\"", points[i].io);
    }
    if (points[i].ack_mean_us >= 0.0) {
      std::fprintf(f, ", \"ack_mean_us\": %.1f", points[i].ack_mean_us);
    }
    if (points[i].ack_p50_us >= 0.0) {
      std::fprintf(f,
                   ", \"ack_p50_us\": %.1f, \"ack_p95_us\": %.1f, "
                   "\"ack_p99_us\": %.1f",
                   points[i].ack_p50_us, points[i].ack_p95_us,
                   points[i].ack_p99_us);
    }
    if (points[i].paced) {
      std::fprintf(f, ", \"paced\": true");
    }
    std::fprintf(f, "}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu scan points)\n", path, points.size());
}

bench::FixedLoad MakeScanLoad(bool smoke) {
  bench::FixedLoad load;
  if (smoke) {
    load.num_partitions = 8;
    load.ops_per_partition = 5'000;
  }
  return load;
}

// Returns false if any configuration failed to stabilize its load (the CI
// smoke step must go red on a stalled pipeline, not print a zero row).
bool RunShardScan(bool smoke, std::vector<ScanPoint>* points) {
  const bench::FixedLoad load = MakeScanLoad(smoke);
  const std::vector<std::uint32_t> shard_counts =
      smoke ? std::vector<std::uint32_t>{1u, 4u}
            : std::vector<std::uint32_t>{1u, 2u, 4u, 8u};
  // The three-way ordered-buffer comparison end-to-end; smoke keeps CI cheap
  // with the two backends the equivalence test pins against each other.
  const std::vector<ordbuf::Backend> backends =
      smoke ? std::vector<ordbuf::Backend>{ordbuf::Backend::kRbTree,
                                           ordbuf::Backend::kPartitionRun}
            : std::vector<ordbuf::Backend>{ordbuf::Backend::kRbTree,
                                           ordbuf::Backend::kAvl,
                                           ordbuf::Backend::kPartitionRun};
  std::printf(
      "\nnative sharded stabilizer pipeline: %u producer partitions race "
      "%llu ops each\n(buffer backend x num_shards; speedups vs the rbtree "
      "1-shard baseline)\n",
      load.num_partitions,
      static_cast<unsigned long long>(load.ops_per_partition));
  Table table({"buffer", "num_shards", "stabilized (kops/s)", "speedup"});
  double rbtree_1shard = 0.0;
  double runqueue_1shard = 0.0;
  bool all_converged = true;
  for (const ordbuf::Backend backend : backends) {
    for (const std::uint32_t shards : shard_counts) {
      const double rate =
          bench::MeasureShardedThroughput(shards, load, 200, backend);
      if (rate <= 0.0) {
        all_converged = false;
      }
      if (backend == ordbuf::Backend::kRbTree && shards == 1) {
        rbtree_1shard = rate;
      }
      if (backend == ordbuf::Backend::kPartitionRun && shards == 1) {
        runqueue_1shard = rate;
      }
      points->push_back({backend, shards, rate, "inproc", -1.0});
      table.AddRow({ordbuf::BackendName(backend), Table::Num(shards, 0),
                    Table::Num(rate / 1000.0, 0),
                    rbtree_1shard > 0
                        ? Table::Num(rate / rbtree_1shard, 2) + "x"
                        : "n/a"});
    }
  }
  table.Print();
  if (rbtree_1shard > 0 && runqueue_1shard > 0) {
    std::printf(
        "\nsingle-shard ordered-buffer speedup (partition_run vs rbtree): "
        "%.2fx\n",
        runqueue_1shard / rbtree_1shard);
  }
  if (!all_converged) {
    std::printf("ERROR: a shard configuration did not stabilize its load\n");
  }
  return all_converged;
}

// --- part 4: the same load through the src/net/ transport stack --------------

// `kind` is "tcp" (real loopback sockets) or "loopback" (the in-process
// transport backend — same wire format and session layer, no kernel).
// One client connection per partition; the partition_run backend (the
// default everywhere) behind the service.
bool RunTransportScan(const std::string& kind, bool smoke,
                      net::TcpBackend io, std::vector<ScanPoint>* points) {
  const bench::FixedLoad load = MakeScanLoad(smoke);
  const std::vector<std::uint32_t> shard_counts =
      smoke ? std::vector<std::uint32_t>{1u, 4u}
            : std::vector<std::uint32_t>{1u, 2u, 4u, 8u};
  const char* io_label = kind == "tcp" ? net::TcpBackendName(io) : "";
  std::printf(
      "\nnetworked service (%s transport%s%s): %u client connections race "
      "%llu ops each\nthrough net::EunomiaClient -> eunomiad-style "
      "net::EunomiaServer (partition_run buffer)\n",
      kind.c_str(), kind == "tcp" ? ", io=" : "", io_label,
      load.num_partitions,
      static_cast<unsigned long long>(load.ops_per_partition));
  Table table({"transport", "num_shards", "stabilized (kops/s)",
               "ack mean (us)", "ack p95 (us)", "ack max (us)"});
  bool all_converged = true;
  // The TCP runs double as the scrape-endpoint exercise for CI: the server
  // and service register into the default registry (where the net layer's
  // frame counters already live), a MetricsServer serves it on an ephemeral
  // loopback port, and a sidecar thread scrapes it WHILE the load runs —
  // proving the exposition path is safe against live wait-free writers, not
  // just after quiescence. The last mid-run scrape is written to
  // fig2_tcp_scrape.prom so CI archives a real exposition next to
  // BENCH_fig2.json.
  metrics::MetricsServer metrics_server;
  std::string metrics_address;
  std::string last_scrape;
  if (kind == "tcp") {
    metrics_address = metrics_server.Start("127.0.0.1:0");
  }
  for (const std::uint32_t shards : shard_counts) {
    // Fresh transport per run: EunomiaServer::Stop shuts its transport down.
    bench::TransportRunResult result;
    if (kind == "tcp") {
      std::unique_ptr<net::Transport> transport = net::MakeTcpTransport(io);
      std::atomic<bool> done{false};
      std::thread scraper([&metrics_address, &last_scrape, &done] {
        while (!done.load(std::memory_order_relaxed)) {
          std::string body;
          if (metrics::HttpGet(metrics_address, "/metrics", &body) &&
              !body.empty()) {
            last_scrape = std::move(body);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      });
      result = bench::MeasureTransportThroughput(
          *transport, "127.0.0.1:0", shards, load, 200,
          ordbuf::Backend::kPartitionRun, &metrics::Registry::Default());
      done.store(true, std::memory_order_relaxed);
      scraper.join();
    } else {
      net::LoopbackTransport transport;
      result = bench::MeasureTransportThroughput(transport, "fig2", shards,
                                                 load);
    }
    if (result.ops_per_sec <= 0.0) {
      all_converged = false;
    }
    ScanPoint point{ordbuf::Backend::kPartitionRun, shards, result.ops_per_sec,
                    kind == "tcp" ? "tcp" : "loopback",
                    result.ack_latency_us.Mean()};
    point.io = io_label;
    point.ack_p50_us =
        static_cast<double>(result.ack_latency_us.Percentile(50));
    point.ack_p95_us =
        static_cast<double>(result.ack_latency_us.Percentile(95));
    point.ack_p99_us =
        static_cast<double>(result.ack_latency_us.Percentile(99));
    points->push_back(point);
    table.AddRow({kind, Table::Num(shards, 0),
                  Table::Num(result.ops_per_sec / 1000.0, 0),
                  Table::Num(result.ack_latency_us.Mean(), 0),
                  Table::Num(point.ack_p95_us, 0),
                  Table::Num(static_cast<double>(result.ack_latency_us.Max()),
                             0)});
  }
  table.Print();

  // The latency point: the same client/server stack, but the producers pace
  // themselves well below capacity (the paper's 1 ms batching, small
  // batches), so the ack percentiles measure the round trip itself instead
  // of saturation queueing. This is the "ack p95 at fixed load" series.
  {
    bench::FixedLoad paced = load;
    // 20 ops per partition per millisecond = 320 kops/s offered across the
    // 16 partitions — far below the measured capacity, so the percentiles
    // reflect the round trip, not queueing.
    paced.ops_per_batch = 20;
    paced.batch_interval_us = 1000;
    paced.ops_per_partition = smoke ? 1'000 : 10'000;
    const std::uint32_t shards = shard_counts.back();
    bench::TransportRunResult result;
    if (kind == "tcp") {
      std::unique_ptr<net::Transport> transport = net::MakeTcpTransport(io);
      result = bench::MeasureTransportThroughput(
          *transport, "127.0.0.1:0", shards, paced, 200,
          ordbuf::Backend::kPartitionRun, &metrics::Registry::Default());
    } else {
      net::LoopbackTransport transport;
      result = bench::MeasureTransportThroughput(transport, "fig2-paced",
                                                 shards, paced);
    }
    if (result.ops_per_sec <= 0.0) {
      all_converged = false;
    }
    ScanPoint point{ordbuf::Backend::kPartitionRun, shards, result.ops_per_sec,
                    kind == "tcp" ? "tcp" : "loopback",
                    result.ack_latency_us.Mean()};
    point.io = io_label;
    point.paced = true;
    point.ack_p50_us =
        static_cast<double>(result.ack_latency_us.Percentile(50));
    point.ack_p95_us =
        static_cast<double>(result.ack_latency_us.Percentile(95));
    point.ack_p99_us =
        static_cast<double>(result.ack_latency_us.Percentile(99));
    points->push_back(point);
    std::printf(
        "\npaced below-capacity run (%u shards, %llu ops/batch every 1 ms): "
        "ack p50 %.0f us, p95 %.0f us, p99 %.0f us\n",
        shards, static_cast<unsigned long long>(paced.ops_per_batch),
        point.ack_p50_us, point.ack_p95_us, point.ack_p99_us);
  }
  if (kind == "tcp") {
    metrics_server.Stop();
    // A mid-run scrape that is missing the key series means the endpoint or
    // the instrumentation regressed — fail the smoke, not just the archive.
    bool scrape_ok = !last_scrape.empty();
    for (const char* name :
         {"eunomia_net_frames_in_total", "eunomia_net_bytes_in_total",
          "eunomia_server_ack_latency_microseconds_count",
          "eunomia_service_ops_stabilized_total"}) {
      bool found = false;
      metrics::SeriesSum(last_scrape, name, &found);
      scrape_ok = scrape_ok && found;
      if (!found) {
        std::printf("ERROR: mid-run scrape is missing series %s\n", name);
      }
    }
    if (std::FILE* f = std::fopen("fig2_tcp_scrape.prom", "w")) {
      std::fwrite(last_scrape.data(), 1, last_scrape.size(), f);
      std::fclose(f);
      std::printf("wrote fig2_tcp_scrape.prom (%zu bytes, scraped mid-run)\n",
                  last_scrape.size());
    } else {
      std::printf("WARNING: could not write fig2_tcp_scrape.prom\n");
    }
    all_converged = all_converged && scrape_ok;
  }
  if (!all_converged) {
    std::printf("ERROR: a transport configuration did not stabilize its load\n");
  }
  return all_converged;
}

int Run(bool smoke, const std::string& transport, net::TcpBackend io) {
  harness::PrintBanner(
      "Figure 2: maximum throughput, Eunomia vs a synchronous sequencer",
      "clients connect directly to the services (each client = one "
      "partition); Eunomia batches 1 ms off the critical path");

  std::vector<ScanPoint> points;
  if (smoke) {
    bool ok = RunShardScan(/*smoke=*/true, &points);
    if (transport != "inproc") {
      ok = RunTransportScan(transport, /*smoke=*/true, io, &points) && ok;
    }
    WriteBenchJson("BENCH_fig2.json", /*smoke=*/true, points,
                   MakeScanLoad(true));
    return ok ? 0 : 1;
  }

  const double rbtree_core = MeasureCoreIngest(ordbuf::Backend::kRbTree);
  const double runqueue_core =
      MeasureCoreIngest(ordbuf::Backend::kPartitionRun);
  std::printf(
      "\nnative EunomiaCore ingest+stabilize rate:\n"
      "  rbtree (the paper's §6 buffer): %.1f Mops/s\n"
      "  partition_run (Property-2 run queues): %.1f Mops/s (%.2fx)\n"
      "=> the ordering core is ~2 orders of magnitude faster than "
      "the end-to-end service;\n   the bottleneck is message handling and "
      "propagation, as §7.1 observes.\n",
      rbtree_core / 1e6, runqueue_core / 1e6,
      rbtree_core > 0 ? runqueue_core / rbtree_core : 0.0);

  Table table({"partitions/clients", "Eunomia (kops/s)", "Sequencer (kops/s)",
               "ratio"});
  double peak_ratio = 0.0;
  for (const std::uint32_t n : {15u, 30u, 45u, 60u, 75u}) {
    const double eunomia = SimulateEunomia(n);
    const double sequencer = SimulateSequencer(n);
    const double ratio = sequencer > 0 ? eunomia / sequencer : 0.0;
    peak_ratio = std::max(peak_ratio, ratio);
    table.AddRow({Table::Num(n, 0), Table::Num(eunomia / 1000.0, 0),
                  Table::Num(sequencer / 1000.0, 0),
                  Table::Num(ratio, 1) + "x"});
  }
  table.Print();
  std::printf(
      "\npaper reference: Eunomia peaks ~370 kops/s at 60 partitions and "
      "stays flat at 75; the sequencer\nsaturates ~48 kops/s regardless of "
      "clients (7.7x). peak measured ratio: %.1fx\n",
      peak_ratio);

  bool ok = RunShardScan(/*smoke=*/false, &points);
  if (transport != "inproc") {
    ok = RunTransportScan(transport, /*smoke=*/false, io, &points) && ok;
  }
  WriteBenchJson("BENCH_fig2.json", /*smoke=*/false, points,
                 MakeScanLoad(false));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eunomia

int main(int argc, char** argv) {
  eunomia::bench::Flags flags(argc, argv, {"smoke", "transport", "io"});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  const std::string transport = flags.Get("transport", "inproc");
  if (transport != "inproc" && transport != "tcp" && transport != "loopback") {
    std::fprintf(stderr,
                 "--transport must be inproc, tcp or loopback (got '%s')\n",
                 transport.c_str());
    return 2;
  }
  eunomia::net::TcpBackend io = eunomia::net::TcpBackend::kEpoll;
  if (!eunomia::net::ParseTcpBackend(flags.Get("io", "epoll"), &io)) {
    std::fprintf(stderr, "--io must be epoll or threaded (got '%s')\n",
                 flags.Get("io", "epoll").c_str());
    return 2;
  }
  return eunomia::Run(flags.smoke(), transport, io);
}
