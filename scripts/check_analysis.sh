#!/usr/bin/env bash
# Local entry point for the concurrency/static-analysis gates that CI's
# static-analysis job runs (.github/workflows/ci.yml). Requires clang,
# clang-tidy and clang-format on PATH.
#
# Usage:
#   scripts/check_analysis.sh all               # everything, default build dir
#   scripts/check_analysis.sh thread-safety [build-dir]
#   scripts/check_analysis.sh negative-compile [build-dir]
#   scripts/check_analysis.sh tidy [build-dir]
#   scripts/check_analysis.sh format
#
# thread-safety configures (if needed) and builds the tree with clang and
# -Werror=thread-safety-analysis; negative-compile proves the analysis is
# actually armed by compiling tests/sync_negative_compile.cc four ways, each
# of which MUST fail; tidy runs clang-tidy over every first-party TU in the
# build's compile_commands.json with warnings as errors; format checks
# clang-format cleanliness without rewriting anything.

set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-all}"
BUILD_DIR="${2:-build-clang}"

configure() {
  if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
    cmake -B "${BUILD_DIR}" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
      -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety-analysis" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  fi
}

check_thread_safety() {
  configure
  cmake --build "${BUILD_DIR}" -j
  echo "thread-safety: OK"
}

check_negative_compile() {
  configure
  # Each probe is an annotation violation that must FAIL to compile; a probe
  # that compiles means the analysis is silently off and the whole clang job
  # is vacuous.
  local probe
  for probe in 1 2 3 4; do
    if clang++ -std=c++20 -I. -Wthread-safety -Werror=thread-safety-analysis \
        -DEUNOMIA_NEGATIVE_COMPILE="${probe}" \
        -c tests/sync_negative_compile.cc -o /dev/null 2>/dev/null; then
      echo "negative-compile: probe ${probe} COMPILED (expected failure)" >&2
      exit 1
    fi
    echo "negative-compile: probe ${probe} rejected, as required"
  done
  # And the macro-less build must succeed, so the always-built tree is clean.
  clang++ -std=c++20 -I. -Wthread-safety -Werror=thread-safety-analysis \
    -c tests/sync_negative_compile.cc -o /dev/null
  echo "negative-compile: OK"
}

check_tidy() {
  configure
  [ -f "${BUILD_DIR}/compile_commands.json" ] || {
    echo "tidy: ${BUILD_DIR}/compile_commands.json missing" >&2
    exit 1
  }
  # First-party TUs only: the vendored/gtest TUs are not ours to lint.
  git ls-files 'src/*.cc' 'tests/*.cc' 'bench/*.cc' 'examples/*.cc' \
      'examples/*.cpp' |
    grep -v 'sync_negative_compile' |
    xargs clang-tidy -p "${BUILD_DIR}" --warnings-as-errors='*' --quiet
  echo "clang-tidy: OK"
}

check_format() {
  git ls-files '*.h' '*.cc' '*.cpp' | xargs clang-format --dry-run -Werror
  echo "clang-format: OK"
}

case "${MODE}" in
  thread-safety) check_thread_safety ;;
  negative-compile) check_negative_compile ;;
  tidy) check_tidy ;;
  format) check_format ;;
  all)
    check_thread_safety
    check_negative_compile
    check_tidy
    check_format
    ;;
  *)
    echo "unknown mode: ${MODE}" >&2
    echo "usage: $0 {all|thread-safety|negative-compile|tidy|format} [build-dir]" >&2
    exit 2
    ;;
esac
